package netsim

import (
	"math/rand"
	"time"
)

// Packet is one simulated segment. Sequence numbers count MSS-sized
// segments rather than bytes, which loses no behaviour relevant to the
// congestion-control dynamics the experiment visualizes.
type Packet struct {
	Flow int   // flow identifier, used for routing at the dumbbell ends
	Seq  int64 // segment number (data packets)
	Ack  bool  // true for pure ACKs
	AckN int64 // cumulative ACK: next expected segment
	Size int   // bytes on the wire

	// ECN state (RFC 3168): ECT marks an ECN-capable transport; routers
	// set CE instead of dropping; receivers echo ECE on ACKs until the
	// sender acknowledges with CWR on a data packet.
	ECT, CE, ECE, CWR bool

	// Sacked lists out-of-order segments held by the receiver (bounded,
	// lowest first) — the SACK option payload on ACKs.
	Sacked []int64

	SentAt  time.Duration // transmit timestamp for RTT sampling
	Retrans bool          // retransmitted segments are not RTT-timed (Karn)
}

// Queue is a router queue discipline: it admits or rejects (or ECN-marks)
// packets waiting for the outgoing link.
type Queue interface {
	// Enqueue offers p; the queue returns false when p was dropped.
	Enqueue(p *Packet) bool
	// Dequeue removes the next packet, or nil when empty.
	Dequeue() *Packet
	// Len returns the number of queued packets.
	Len() int
	// Drops returns the lifetime drop count.
	Drops() int64
}

// DropTail is a FIFO queue with a hard packet-count limit — the default
// router behaviour in the paper's TCP experiment (Figure 4).
type DropTail struct {
	Cap   int
	pkts  []*Packet
	drops int64
}

// NewDropTail returns a FIFO bounded to capacity packets.
func NewDropTail(capacity int) *DropTail { return &DropTail{Cap: capacity} }

// Enqueue implements Queue.
func (q *DropTail) Enqueue(p *Packet) bool {
	if len(q.pkts) >= q.Cap {
		q.drops++
		return false
	}
	q.pkts = append(q.pkts, p)
	return true
}

// Dequeue implements Queue.
func (q *DropTail) Dequeue() *Packet {
	if len(q.pkts) == 0 {
		return nil
	}
	p := q.pkts[0]
	q.pkts = q.pkts[1:]
	return p
}

// Len implements Queue.
func (q *DropTail) Len() int { return len(q.pkts) }

// Drops implements Queue.
func (q *DropTail) Drops() int64 { return q.drops }

// RED is Random Early Detection with ECN marking (the router discipline in
// the paper's ECN experiment, Figure 5): an EWMA of the queue length
// selects a marking probability between MinTh and MaxTh; ECN-capable
// packets are marked CE instead of dropped. Above MaxTh every packet is
// marked (gentle mode drops only non-ECT traffic); the hard capacity still
// bounds the queue.
type RED struct {
	Cap          int
	MinTh, MaxTh float64
	MaxP         float64
	Wq           float64
	rng          *rand.Rand

	pkts  []*Packet
	avg   float64
	drops int64
	marks int64
}

// NewRED returns a RED queue. Wq is set to 0.02 — faster than the classic
// 0.002 so the gateway responds within a slow-start burst, which 2002-era
// Linux RED achieved through its idle-time correction.
func NewRED(capacity int, minTh, maxTh, maxP float64, seed int64) *RED {
	return &RED{
		Cap:   capacity,
		MinTh: minTh,
		MaxTh: maxTh,
		MaxP:  maxP,
		Wq:    0.02,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Marks returns how many packets were CE-marked.
func (q *RED) Marks() int64 { return q.marks }

// AvgLen returns the EWMA queue length estimate.
func (q *RED) AvgLen() float64 { return q.avg }

// Enqueue implements Queue.
func (q *RED) Enqueue(p *Packet) bool {
	q.avg = (1-q.Wq)*q.avg + q.Wq*float64(len(q.pkts))

	congest := false
	switch {
	// Mark on the average, and also on the instantaneous length so a
	// slow-start burst that outruns the EWMA is still signaled before the
	// hard capacity drops packets.
	case q.avg >= q.MaxTh || float64(len(q.pkts)) >= q.MaxTh:
		congest = true
	case q.avg > q.MinTh:
		prob := q.MaxP * (q.avg - q.MinTh) / (q.MaxTh - q.MinTh)
		congest = q.rng.Float64() < prob
	}
	if congest {
		if p.ECT {
			p.CE = true
			q.marks++
		} else {
			q.drops++
			return false
		}
	}
	if len(q.pkts) >= q.Cap {
		q.drops++
		return false
	}
	q.pkts = append(q.pkts, p)
	return true
}

// Dequeue implements Queue.
func (q *RED) Dequeue() *Packet {
	if len(q.pkts) == 0 {
		return nil
	}
	p := q.pkts[0]
	q.pkts = q.pkts[1:]
	return p
}

// Len implements Queue.
func (q *RED) Len() int { return len(q.pkts) }

// Drops implements Queue.
func (q *RED) Drops() int64 { return q.drops }

// Link models one direction of a network path: a queue feeding a
// transmitter with finite bandwidth, followed by propagation delay — the
// behaviour nistnet imposed at the paper's router.
type Link struct {
	sim *Sim
	// RateBps is the transmit rate in bits/second; 0 means infinite.
	RateBps float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Q is the queue discipline holding packets awaiting transmission.
	Q Queue
	// Deliver receives packets at the far end.
	Deliver func(*Packet)

	busy     bool
	sent     int64
	delivers int64
}

// NewLink builds a link on sim.
func NewLink(sim *Sim, rateBps float64, delay time.Duration, q Queue, deliver func(*Packet)) *Link {
	return &Link{sim: sim, RateBps: rateBps, Delay: delay, Q: q, Deliver: deliver}
}

// Sent returns how many packets entered transmission.
func (l *Link) Sent() int64 { return l.sent }

// Send offers a packet to the link; it is queued (possibly dropped or
// ECN-marked by the queue) and transmitted in order.
func (l *Link) Send(p *Packet) {
	if !l.Q.Enqueue(p) {
		return
	}
	if !l.busy {
		l.transmitNext()
	}
}

func (l *Link) transmitNext() {
	p := l.Q.Dequeue()
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	l.sent++
	tx := time.Duration(0)
	if l.RateBps > 0 {
		tx = time.Duration(float64(p.Size*8) / l.RateBps * float64(time.Second))
	}
	// Transmission finishes after tx; the packet arrives Delay later; the
	// next packet starts transmitting immediately after tx.
	l.sim.After(tx, func() {
		l.sim.After(l.Delay, func() {
			l.delivers++
			l.Deliver(p)
		})
		l.transmitNext()
	})
}
