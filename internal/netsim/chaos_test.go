package netsim

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/testutil"
)

// The chaos proxy promises goroutine-clean shutdown; echo helpers exit
// with their listeners. A leaked pipe goroutine fails the whole package.
func TestMain(m *testing.M) {
	testutil.VerifyTestMain(m)
}

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				close(done)
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							break
						}
					}
					if err != nil {
						break
					}
				}
				c.Close()
			}(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); <-done }
}

func TestChaosProxyForwardsTransparently(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewChaosProxy(addr, ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("100 42.5 CWND\n200 43 CWND\n")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	n := 0
	for n < len(msg) {
		m, err := conn.Read(got[n:])
		if err != nil {
			t.Fatalf("echo read after %d bytes: %v", n, err)
		}
		n += m
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo corrupted: %q vs %q", got, msg)
	}
	if p.Forwarded() < int64(2*len(msg)) {
		t.Fatalf("forwarded %d bytes, expected at least %d", p.Forwarded(), 2*len(msg))
	}
}

func TestChaosProxyAddsDelay(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewChaosProxy(addr, ChaosConfig{Delay: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if _, err := conn.Write([]byte("ping\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	// Two proxied hops (request and echo), 30ms each.
	if rtt := time.Since(start); rtt < 60*time.Millisecond {
		t.Fatalf("round trip %s under the 2×30ms injected delay", rtt)
	}
}

func TestChaosProxyKillsConnections(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewChaosProxy(addr, ChaosConfig{KillEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection survived the kill loop")
	}
	if !testutil.Poll(testutil.DefaultWaitTimeout, func() bool { return p.Killed() >= 1 }) {
		t.Fatalf("kill counter stuck at %d", p.Killed())
	}
}

func TestChaosProxyPartitionStallsThenRecovers(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewChaosProxy(addr, ChaosConfig{
		PartitionEvery: 20 * time.Millisecond,
		PartitionFor:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if !testutil.Poll(testutil.DefaultWaitTimeout, func() bool { return p.Partitions() >= 1 }) {
		t.Fatalf("no partition injected")
	}
	// Traffic sent into (or around) a partition still arrives once it
	// heals: stalls delay, never discard.
	if _, err := conn.Write([]byte("after partition\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("echo never arrived across partitions: %v", err)
	}
}

func TestChaosProxyCloseIsIdempotentAndClean(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewChaosProxy(addr, ChaosConfig{
		Delay:          5 * time.Millisecond,
		Jitter:         5 * time.Millisecond,
		KillEvery:      50 * time.Millisecond,
		PartitionEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("in flight\n"))
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := net.Dial("tcp", p.Addr()); err == nil {
		t.Fatal("proxy still accepting after Close")
	}
}
