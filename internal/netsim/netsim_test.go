package netsim

import (
	"testing"
	"time"
)

func TestSimEventOrdering(t *testing.T) {
	s := NewSim()
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.RunUntil(time.Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if s.Now() != time.Second {
		t.Fatalf("clock should finish at the horizon, got %v", s.Now())
	}
}

func TestSimSameTimeFIFO(t *testing.T) {
	s := NewSim()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.After(10*time.Millisecond, func() { got = append(got, i) })
	}
	s.RunUntil(time.Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	s := NewSim()
	fired := false
	tm := s.After(10*time.Millisecond, func() { fired = true })
	tm.Cancel()
	s.RunUntil(time.Second)
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestSimRunUntilPartial(t *testing.T) {
	s := NewSim()
	fired := 0
	s.After(10*time.Millisecond, func() { fired++ })
	s.After(100*time.Millisecond, func() { fired++ })
	s.RunUntil(50 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("expected 1 event by 50ms, got %d", fired)
	}
	s.RunUntil(200 * time.Millisecond)
	if fired != 2 {
		t.Fatalf("expected 2 events by 200ms, got %d", fired)
	}
}

func TestDropTailDropsAtCapacity(t *testing.T) {
	q := NewDropTail(2)
	a, b, c := &Packet{Seq: 1}, &Packet{Seq: 2}, &Packet{Seq: 3}
	if !q.Enqueue(a) || !q.Enqueue(b) {
		t.Fatal("first two packets should be admitted")
	}
	if q.Enqueue(c) {
		t.Fatal("third packet should be dropped")
	}
	if q.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", q.Drops())
	}
	if got := q.Dequeue(); got != a {
		t.Fatal("FIFO order violated")
	}
}

func TestREDMarksECTInsteadOfDropping(t *testing.T) {
	q := NewRED(100, 2, 6, 1.0, 42)
	// Grow the average above MaxTh by enqueueing without dequeuing.
	marked := 0
	for i := 0; i < 400; i++ {
		p := &Packet{Seq: int64(i), ECT: true}
		if q.Enqueue(p) && p.CE {
			marked++
		}
		if q.Len() > 50 {
			q.Dequeue()
		}
	}
	if marked == 0 {
		t.Fatal("RED never marked an ECT packet")
	}
	if q.Drops() != 0 {
		t.Fatalf("RED dropped %d ECT packets; should mark instead", q.Drops())
	}
}

func TestREDDropsNonECT(t *testing.T) {
	q := NewRED(100, 2, 6, 1.0, 42)
	drops := 0
	for i := 0; i < 400; i++ {
		p := &Packet{Seq: int64(i)}
		if !q.Enqueue(p) {
			drops++
		}
		if q.Len() > 50 {
			q.Dequeue()
		}
	}
	if drops == 0 {
		t.Fatal("RED never dropped a non-ECT packet under congestion")
	}
}

func TestLinkSerializationDelay(t *testing.T) {
	s := NewSim()
	var arrivals []time.Duration
	// 1 Mbit/s, 10 ms propagation: a 1250-byte packet serializes in 10 ms.
	l := NewLink(s, 1e6, 10*time.Millisecond, NewDropTail(10), func(p *Packet) {
		arrivals = append(arrivals, s.Now())
	})
	l.Send(&Packet{Size: 1250})
	l.Send(&Packet{Size: 1250})
	s.RunUntil(time.Second)
	if len(arrivals) != 2 {
		t.Fatalf("expected 2 deliveries, got %d", len(arrivals))
	}
	if arrivals[0] != 20*time.Millisecond {
		t.Fatalf("first arrival %v, want 20ms (10 tx + 10 prop)", arrivals[0])
	}
	if arrivals[1] != 30*time.Millisecond {
		t.Fatalf("second arrival %v, want 30ms (serialized behind first)", arrivals[1])
	}
}

// loopback wires a sender and receiver back to back through links.
func loopback(t *testing.T, cfg TCPConfig, rate float64, delay time.Duration, qcap int, limit int64) (*Sim, *TCPSender, *TCPReceiver) {
	t.Helper()
	sim := NewSim()
	var snd *TCPSender
	var rcv *TCPReceiver
	fwd := NewLink(sim, rate, delay, NewDropTail(qcap), func(p *Packet) { rcv.OnPacket(p) })
	rev := NewLink(sim, rate*100, delay, NewDropTail(10000), func(p *Packet) { snd.OnAck(p) })
	snd = NewTCPSender(sim, 0, cfg, limit, fwd.Send)
	rcv = NewTCPReceiver(sim, 0, rev.Send)
	return sim, snd, rcv
}

func TestTCPBoundedTransferCompletes(t *testing.T) {
	cfg := DefaultTCPConfig()
	sim, snd, rcv := loopback(t, cfg, 10e6, 5*time.Millisecond, 100, 200)
	done := false
	snd.OnDone = func() { done = true }
	snd.Start()
	sim.RunUntil(30 * time.Second)
	if !done {
		t.Fatalf("transfer did not complete: acked=%d inflight=%d cwnd=%.1f",
			snd.AckedSegments, snd.InFlight(), snd.Cwnd())
	}
	if rcv.SegmentsReceived < 200 {
		t.Fatalf("receiver got %d segments, want >= 200", rcv.SegmentsReceived)
	}
	if snd.Timeouts != 0 {
		t.Fatalf("uncongested transfer suffered %d timeouts", snd.Timeouts)
	}
}

func TestTCPSlowStartGrowth(t *testing.T) {
	cfg := DefaultTCPConfig()
	sim, snd, _ := loopback(t, cfg, 100e6, 5*time.Millisecond, 1000, 0)
	snd.Start()
	// After a few RTTs with no loss the window should have grown well past
	// the initial value.
	sim.RunUntil(100 * time.Millisecond)
	if snd.Cwnd() <= cfg.InitCwnd {
		t.Fatalf("cwnd did not grow: %.1f", snd.Cwnd())
	}
	sim.RunUntil(2 * time.Second)
	if snd.Cwnd() < cfg.MaxCwnd {
		t.Fatalf("cwnd should reach MaxCwnd on an uncongested path: %.1f", snd.Cwnd())
	}
}

func TestTCPRTTEstimate(t *testing.T) {
	cfg := DefaultTCPConfig()
	sim, snd, _ := loopback(t, cfg, 100e6, 25*time.Millisecond, 1000, 0)
	snd.Start()
	sim.RunUntil(2 * time.Second)
	if snd.SRTT() < 45*time.Millisecond || snd.SRTT() > 80*time.Millisecond {
		t.Fatalf("srtt %v far from the 50ms path RTT", snd.SRTT())
	}
}

func TestTCPCongestionCausesLossAndRecovery(t *testing.T) {
	cfg := DefaultTCPConfig()
	// Tiny queue on a slow link: the window overruns it and loses packets.
	sim, snd, rcv := loopback(t, cfg, 2e6, 20*time.Millisecond, 5, 0)
	snd.Start()
	sim.RunUntil(20 * time.Second)
	if snd.FastRetransmits == 0 && snd.Timeouts == 0 {
		t.Fatal("no loss recovery on a congested path")
	}
	if rcv.SegmentsReceived == 0 {
		t.Fatal("no goodput")
	}
	// Goodput should approximate the link rate: 2 Mbit/s over 20 s ≈
	// 3424 segments. Accept over half of that.
	if rcv.SegmentsReceived < 1700 {
		t.Fatalf("goodput too low: %d segments", rcv.SegmentsReceived)
	}
}

func TestTCPECNAvoidsTimeouts(t *testing.T) {
	cfgT := DefaultTCPConfig()
	sim := NewSim()
	cfgE := cfgT
	cfgE.ECN = true
	var snd *TCPSender
	var rcv *TCPReceiver
	red := NewRED(100, 8, 25, 0.1, 7)
	fwd := NewLink(sim, 2e6, 20*time.Millisecond, red, func(p *Packet) { rcv.OnPacket(p) })
	rev := NewLink(sim, 200e6, 20*time.Millisecond, NewDropTail(10000), func(p *Packet) { snd.OnAck(p) })
	snd = NewTCPSender(sim, 0, cfgE, 0, fwd.Send)
	rcv = NewTCPReceiver(sim, 0, rev.Send)
	snd.Start()
	sim.RunUntil(30 * time.Second)
	if snd.Timeouts != 0 {
		t.Fatalf("ECN flow suffered %d timeouts", snd.Timeouts)
	}
	if snd.ECNReductions == 0 {
		t.Fatal("ECN flow never responded to marking")
	}
	if red.Marks() == 0 {
		t.Fatal("RED never marked")
	}
}

func TestDumbbellManyFlowsTCPTimeouts(t *testing.T) {
	// The Figure 4 condition: 16 DropTail elephants force burst loss and
	// retransmission timeouts.
	cfg := DefaultDumbbell()
	d := NewDumbbell(cfg)
	for i := 0; i < 16; i++ {
		d.AddElephant()
	}
	d.Sim.RunUntil(60 * time.Second)
	if d.TotalTimeouts() == 0 {
		t.Fatal("16 DropTail elephants should cause timeouts (Figure 4 condition)")
	}
}

func TestDumbbellManyFlowsECNNoTimeouts(t *testing.T) {
	// The Figure 5 condition: RED+ECN elephants avoid timeouts entirely.
	cfg := DefaultDumbbell()
	cfg.RED = true
	cfg.TCP.ECN = true
	d := NewDumbbell(cfg)
	// Stagger flow starts the way mxtraf brings elephants up, avoiding a
	// fully synchronized slow-start burst.
	for i := 0; i < 16; i++ {
		at := time.Duration(i) * 250 * time.Millisecond
		d.Sim.At(at, func() { d.AddElephant() })
	}
	d.Sim.RunUntil(60 * time.Second)
	if got := d.TotalTimeouts(); got != 0 {
		t.Fatalf("ECN elephants suffered %d timeouts; Figure 5 shows none", got)
	}
	var reductions int64
	for _, f := range d.Flows() {
		reductions += f.Sender.ECNReductions
	}
	if reductions == 0 {
		t.Fatal("ECN flows never reduced; marking is not reaching senders")
	}
}

func TestDumbbellRemoveFlow(t *testing.T) {
	d := NewDumbbell(DefaultDumbbell())
	f1 := d.AddElephant()
	f2 := d.AddElephant()
	d.Sim.RunUntil(2 * time.Second)
	if !d.RemoveFlow(f1.ID) {
		t.Fatal("RemoveFlow failed")
	}
	if d.RemoveFlow(f1.ID) {
		t.Fatal("double remove should report false")
	}
	if d.NumFlows() != 1 {
		t.Fatalf("NumFlows = %d, want 1", d.NumFlows())
	}
	before := f2.Receiver.SegmentsReceived
	d.Sim.RunUntil(10 * time.Second)
	if f2.Receiver.SegmentsReceived <= before {
		t.Fatal("surviving flow stopped making progress")
	}
}

func TestFairnessMoreFlowsSmallerWindows(t *testing.T) {
	mean := func(n int) float64 {
		cfg := DefaultDumbbell()
		d := NewDumbbell(cfg)
		for i := 0; i < n; i++ {
			d.AddElephant()
		}
		d.Sim.RunUntil(40 * time.Second)
		sum := 0.0
		for _, f := range d.Flows() {
			sum += f.Sender.Cwnd()
		}
		return sum / float64(n)
	}
	m8, m16 := mean(8), mean(16)
	if m16 >= m8 {
		t.Fatalf("mean cwnd should shrink with more flows: 8→%.1f, 16→%.1f", m8, m16)
	}
}

func TestUDPSourceRateAndSink(t *testing.T) {
	sim := NewSim()
	sink := NewUDPSink(sim, 0)
	// Direct wiring through a fast link: 1 Mbit/s CBR of 1000-byte
	// datagrams = 125 packets/s.
	l := NewLink(sim, 100e6, 10*time.Millisecond, NewDropTail(1000), sink.OnPacket)
	src := NewUDPSource(sim, 0, 1e6, 1000, l.Send)
	src.Start()
	sim.RunUntil(4 * time.Second)
	src.Stop()
	perSec := float64(sink.Received) / 4
	if perSec < 110 || perSec > 140 {
		t.Fatalf("UDP rate %.1f pkts/s, want ≈125", perSec)
	}
	if sink.LossRate() != 0 {
		t.Fatalf("unexpected loss %v", sink.LossRate())
	}
	if sink.LastLatency < 10*time.Millisecond {
		t.Fatalf("latency %v below propagation delay", sink.LastLatency)
	}
	// A few packets can already be in flight at Stop time; none should
	// be *sent* afterwards.
	sent := src.Sent
	sim.RunUntil(5 * time.Second)
	if src.Sent != sent {
		t.Fatal("source kept sending after Stop")
	}
}

func TestUDPSinkCountsLoss(t *testing.T) {
	sim := NewSim()
	sink := NewUDPSink(sim, 0)
	sink.OnPacket(&Packet{Seq: 0, Size: 100})
	sink.OnPacket(&Packet{Seq: 3, Size: 100}) // 1,2 lost
	if sink.Lost != 2 {
		t.Fatalf("lost = %d, want 2", sink.Lost)
	}
	if lr := sink.LossRate(); lr < 0.49 || lr > 0.51 {
		t.Fatalf("loss rate %v, want 0.5", lr)
	}
}

func TestUDPOnDumbbellStealsFromTCP(t *testing.T) {
	// Unresponsive UDP at 60% of the bottleneck squeezes the elephants.
	run := func(udpBps float64) int64 {
		cfg := DefaultDumbbell()
		d := NewDumbbell(cfg)
		for i := 0; i < 4; i++ {
			d.AddElephant()
		}
		if udpBps > 0 {
			d.AddUDP(udpBps, 1000)
		}
		d.Sim.RunUntil(20 * time.Second)
		return d.GoodputSegments()
	}
	clean := run(0)
	squeezed := run(6e6)
	if squeezed >= clean*3/4 {
		t.Fatalf("UDP load did not squeeze TCP: %d vs %d segments", clean, squeezed)
	}
}

func TestUDPRemoveFlow(t *testing.T) {
	d := NewDumbbell(DefaultDumbbell())
	f := d.AddUDP(1e6, 1000)
	d.Sim.RunUntil(time.Second)
	if len(d.UDPFlows()) != 1 {
		t.Fatal("UDP flow not registered")
	}
	if !d.RemoveUDP(f.ID) || d.RemoveUDP(f.ID) {
		t.Fatal("RemoveUDP semantics")
	}
	if f.Sink.Received == 0 {
		t.Fatal("no datagrams delivered")
	}
}

func TestUDPSinkEventHook(t *testing.T) {
	sim := NewSim()
	sink := NewUDPSink(sim, 0)
	var events int
	sink.OnPacketEvent = func(lat time.Duration, bytes int) { events++ }
	sink.OnPacket(&Packet{Seq: 0, Size: 100})
	sink.OnPacket(&Packet{Seq: 1, Size: 100})
	if events != 2 {
		t.Fatalf("hook fired %d times", events)
	}
}

func TestSACKReceiverReportsHoles(t *testing.T) {
	sim := NewSim()
	var acks []*Packet
	r := NewTCPReceiver(sim, 0, func(p *Packet) { acks = append(acks, p) })
	r.SACK = true
	r.OnPacket(&Packet{Seq: 0, Size: 1460})
	r.OnPacket(&Packet{Seq: 2, Size: 1460}) // hole at 1
	r.OnPacket(&Packet{Seq: 4, Size: 1460}) // hole at 3
	last := acks[len(acks)-1]
	if len(last.Sacked) != 2 || last.Sacked[0] != 2 || last.Sacked[1] != 4 {
		t.Fatalf("sack report = %v, want [2 4]", last.Sacked)
	}
	// Filling the hole collapses the report.
	r.OnPacket(&Packet{Seq: 1, Size: 1460})
	last = acks[len(acks)-1]
	if last.AckN != 3 {
		t.Fatalf("ackN = %d, want 3", last.AckN)
	}
	if len(last.Sacked) != 1 || last.Sacked[0] != 4 {
		t.Fatalf("sack report after fill = %v, want [4]", last.Sacked)
	}
}

func TestSACKNoReportWhenDisabled(t *testing.T) {
	sim := NewSim()
	var acks []*Packet
	r := NewTCPReceiver(sim, 0, func(p *Packet) { acks = append(acks, p) })
	r.OnPacket(&Packet{Seq: 0, Size: 1460})
	r.OnPacket(&Packet{Seq: 2, Size: 1460})
	if len(acks[len(acks)-1].Sacked) != 0 {
		t.Fatal("SACK report present with SACK disabled")
	}
}

// sackLoopback wires a SACK sender/receiver pair.
func sackLoopback(rate float64, delay time.Duration, qcap int, sack bool) (*Sim, *TCPSender, *TCPReceiver) {
	sim := NewSim()
	cfg := DefaultTCPConfig()
	cfg.SACK = sack
	var snd *TCPSender
	var rcv *TCPReceiver
	fwd := NewLink(sim, rate, delay, NewDropTail(qcap), func(p *Packet) { rcv.OnPacket(p) })
	rev := NewLink(sim, rate*100, delay, NewDropTail(10000), func(p *Packet) { snd.OnAck(p) })
	snd = NewTCPSender(sim, 0, cfg, 0, fwd.Send)
	rcv = NewTCPReceiver(sim, 0, rev.Send)
	rcv.SACK = sack
	return sim, snd, rcv
}

func TestSACKRecoversBurstLossWithFewerTimeouts(t *testing.T) {
	// A tiny queue causes burst loss; SACK repairs multiple holes per
	// RTT where NewReno needs a full RTT per hole (often timing out).
	runVariant := func(sack bool) (timeouts int64, goodput int64) {
		sim, snd, rcv := sackLoopback(2e6, 20*time.Millisecond, 4, sack)
		snd.Start()
		sim.RunUntil(30 * time.Second)
		return snd.Timeouts, rcv.SegmentsReceived
	}
	toReno, gpReno := runVariant(false)
	toSack, gpSack := runVariant(true)
	if toSack > toReno {
		t.Fatalf("SACK timed out more than NewReno: %d vs %d", toSack, toReno)
	}
	if gpSack < gpReno*9/10 {
		t.Fatalf("SACK goodput regressed: %d vs %d", gpSack, gpReno)
	}
}

func TestSACKBoundedTransferCompletes(t *testing.T) {
	sim := NewSim()
	cfg := DefaultTCPConfig()
	cfg.SACK = true
	var snd *TCPSender
	var rcv *TCPReceiver
	fwd := NewLink(sim, 5e6, 10*time.Millisecond, NewDropTail(6), func(p *Packet) { rcv.OnPacket(p) })
	rev := NewLink(sim, 500e6, 10*time.Millisecond, NewDropTail(10000), func(p *Packet) { snd.OnAck(p) })
	snd = NewTCPSender(sim, 0, cfg, 500, fwd.Send)
	rcv = NewTCPReceiver(sim, 0, rev.Send)
	rcv.SACK = true
	done := false
	snd.OnDone = func() { done = true }
	snd.Start()
	sim.RunUntil(60 * time.Second)
	if !done {
		t.Fatalf("SACK transfer stalled: acked=%d cwnd=%.1f inflight=%d",
			snd.AckedSegments, snd.Cwnd(), snd.InFlight())
	}
}
