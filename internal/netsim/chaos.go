package netsim

// ChaosProxy is the package's real-time counterpart: where Sim replays
// network behavior in virtual time for the TCP/ECN experiments, the
// chaos proxy degrades *live* TCP connections — added delay and jitter,
// periodic connection kills, and temporary partitions — so soak and
// integration tests can drive the real publisher/hub stack through a
// misbehaving network. It is a test harness component, not a simulator:
// delay is applied per read chunk (serializing delivery), which bounds
// throughput but keeps the implementation free of reordering bugs of
// its own.

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// ChaosConfig configures a ChaosProxy. The zero value forwards
// transparently.
type ChaosConfig struct {
	// Delay is a base one-way delay added to every forwarded chunk, in
	// each direction.
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter) per chunk.
	Jitter time.Duration
	// KillEvery closes every active connection pair at roughly this
	// interval (0 disables). Clients with reconnect logic ride through.
	KillEvery time.Duration
	// PartitionEvery starts a partition at roughly this interval
	// (0 disables): forwarding stalls in both directions, connections
	// stay up.
	PartitionEvery time.Duration
	// PartitionFor is how long each partition lasts (default 100ms).
	PartitionFor time.Duration
	// Seed fixes the jitter/interval randomness; 0 selects 1.
	Seed int64
}

// ChaosProxy forwards TCP connections to a target address through the
// configured degradations.
type ChaosProxy struct {
	cfg    ChaosConfig
	target string
	ln     net.Listener
	done   chan struct{}
	wg     sync.WaitGroup

	mu          sync.Mutex
	rng         *rand.Rand
	conns       map[net.Conn]struct{}
	partitioned bool
	closed      bool
	killed      int64
	partitions  int64
	forwarded   int64
}

// NewChaosProxy listens on a fresh loopback port and forwards every
// accepted connection to target through the configured chaos. Close
// releases the listener and every connection.
func NewChaosProxy(target string, cfg ChaosConfig) (*ChaosProxy, error) {
	if cfg.PartitionFor <= 0 {
		cfg.PartitionFor = 100 * time.Millisecond
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &ChaosProxy{
		cfg:    cfg,
		target: target,
		ln:     ln,
		done:   make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	if cfg.KillEvery > 0 {
		p.wg.Add(1)
		go p.killLoop()
	}
	if cfg.PartitionEvery > 0 {
		p.wg.Add(1)
		go p.partitionLoop()
	}
	return p, nil
}

// Addr returns the proxy's listen address, to be dialed in place of the
// target.
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

// Killed returns how many connection pairs the kill loop has severed.
func (p *ChaosProxy) Killed() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killed
}

// Partitions returns how many partitions have been injected.
func (p *ChaosProxy) Partitions() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.partitions
}

// Forwarded returns the total bytes forwarded across both directions of
// every connection.
func (p *ChaosProxy) Forwarded() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.forwarded
}

// Close stops accepting, severs every connection, and waits for all
// proxy goroutines to exit.
func (p *ChaosProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	err := p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *ChaosProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			up.Close()
			return
		}
		p.conns[conn] = struct{}{}
		p.conns[up] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pipe(up, conn)
		go p.pipe(conn, up)
	}
}

// pipe forwards src→dst chunk by chunk through delay, jitter, and
// partitions, closing both ends when either side goes away so the peer's
// pipe unblocks too.
func (p *ChaosProxy) pipe(dst, src net.Conn) {
	defer p.wg.Done()
	defer p.drop(dst, src)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if d := p.chunkDelay(); d > 0 && !p.sleep(d) {
				return
			}
			if !p.waitUnpartitioned() {
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			p.mu.Lock()
			p.forwarded += int64(n)
			p.mu.Unlock()
		}
		if err != nil {
			return // EOF or reset either way: drop the pair
		}
	}
}

func (p *ChaosProxy) drop(a, b net.Conn) {
	a.Close()
	b.Close()
	p.mu.Lock()
	delete(p.conns, a)
	delete(p.conns, b)
	p.mu.Unlock()
}

func (p *ChaosProxy) chunkDelay() time.Duration {
	d := p.cfg.Delay
	if p.cfg.Jitter > 0 {
		p.mu.Lock()
		d += time.Duration(p.rng.Int63n(int64(p.cfg.Jitter)))
		p.mu.Unlock()
	}
	return d
}

// sleep waits d or until the proxy closes; false means closing.
func (p *ChaosProxy) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.done:
		return false
	}
}

// waitUnpartitioned blocks while a partition is in effect; false means
// the proxy is closing.
func (p *ChaosProxy) waitUnpartitioned() bool {
	for {
		p.mu.Lock()
		part := p.partitioned
		p.mu.Unlock()
		if !part {
			return true
		}
		if !p.sleep(time.Millisecond) {
			return false
		}
	}
}

// jittered returns base scaled by a random factor in [0.5, 1.5), so
// periodic chaos does not phase-lock with periodic traffic.
func (p *ChaosProxy) jittered(base time.Duration) time.Duration {
	p.mu.Lock()
	f := 0.5 + p.rng.Float64()
	p.mu.Unlock()
	return time.Duration(float64(base) * f)
}

func (p *ChaosProxy) killLoop() {
	defer p.wg.Done()
	for {
		if !p.sleep(p.jittered(p.cfg.KillEvery)) {
			return
		}
		p.mu.Lock()
		n := len(p.conns)
		for c := range p.conns {
			c.Close()
		}
		if n > 0 {
			p.killed += int64(n) / 2
		}
		p.mu.Unlock()
	}
}

func (p *ChaosProxy) partitionLoop() {
	defer p.wg.Done()
	for {
		if !p.sleep(p.jittered(p.cfg.PartitionEvery)) {
			return
		}
		p.mu.Lock()
		p.partitioned = true
		p.partitions++
		p.mu.Unlock()
		if !p.sleep(p.cfg.PartitionFor) {
			return
		}
		p.mu.Lock()
		p.partitioned = false
		p.mu.Unlock()
	}
}
