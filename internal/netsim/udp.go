package netsim

import "time"

// UDP traffic. Mxtraf's stated purpose is saturating a network with "a
// tunable mix of TCP and UDP traffic" (§2): UDP sources provide
// unresponsive constant-bit-rate load that TCP flows must live alongside,
// and their receivers measure exactly the per-packet quantities gscope's
// aggregation functions visualize (§4.2): latency, loss, bytes.

// UDPSource emits fixed-size datagrams at a constant bit rate. It does not
// react to congestion.
type UDPSource struct {
	sim *Sim
	id  int
	out func(*Packet)

	// RateBps is the target sending rate in bits/second.
	RateBps float64
	// Size is the datagram size in bytes.
	Size int

	running bool
	seq     int64
	timer   *Timer

	// Sent counts datagrams emitted.
	Sent int64
}

// NewUDPSource builds a CBR source for flow id writing to out.
func NewUDPSource(sim *Sim, id int, rateBps float64, size int, out func(*Packet)) *UDPSource {
	if size <= 0 {
		size = 1000
	}
	return &UDPSource{sim: sim, id: id, out: out, RateBps: rateBps, Size: size}
}

// ID returns the flow identifier.
func (u *UDPSource) ID() int { return u.id }

// Running reports whether the source is emitting.
func (u *UDPSource) Running() bool { return u.running }

// interval returns the inter-packet gap for the configured rate.
func (u *UDPSource) interval() time.Duration {
	if u.RateBps <= 0 {
		return time.Second
	}
	return time.Duration(float64(u.Size*8) / u.RateBps * float64(time.Second))
}

// Start begins emission.
func (u *UDPSource) Start() {
	if u.running {
		return
	}
	u.running = true
	u.emit()
}

// Stop halts emission.
func (u *UDPSource) Stop() {
	u.running = false
	if u.timer != nil {
		u.timer.Cancel()
		u.timer = nil
	}
}

func (u *UDPSource) emit() {
	if !u.running {
		return
	}
	u.out(&Packet{
		Flow:   u.id,
		Seq:    u.seq,
		Size:   u.Size,
		SentAt: u.sim.Now(),
	})
	u.seq++
	u.Sent++
	u.timer = u.sim.After(u.interval(), u.emit)
}

// UDPSink receives datagrams and tracks the loss/latency statistics a
// monitoring scope displays.
type UDPSink struct {
	sim *Sim
	id  int

	// Received counts datagrams delivered.
	Received int64
	// BytesReceived accumulates payload bytes.
	BytesReceived int64
	// lastSeq tracks the highest sequence seen for loss estimation.
	lastSeq int64
	// Lost estimates datagrams missing from the sequence space.
	Lost int64
	// LastLatency is the one-way delay of the most recent datagram.
	LastLatency time.Duration
	// MaxLatency is the largest delay observed.
	MaxLatency time.Duration

	// OnPacketEvent, when set, observes each delivery — the hook an
	// application uses to push per-packet events into gscope aggregation
	// (§4.2: max latency, rate, events per interval...).
	OnPacketEvent func(latency time.Duration, bytes int)
}

// NewUDPSink builds a sink for flow id.
func NewUDPSink(sim *Sim, id int) *UDPSink {
	return &UDPSink{sim: sim, id: id, lastSeq: -1}
}

// OnPacket implements the receive path.
func (k *UDPSink) OnPacket(p *Packet) {
	k.Received++
	k.BytesReceived += int64(p.Size)
	if p.Seq > k.lastSeq {
		if k.lastSeq >= 0 {
			k.Lost += p.Seq - k.lastSeq - 1
		}
		k.lastSeq = p.Seq
	}
	k.LastLatency = k.sim.Now() - p.SentAt
	if k.LastLatency > k.MaxLatency {
		k.MaxLatency = k.LastLatency
	}
	if k.OnPacketEvent != nil {
		k.OnPacketEvent(k.LastLatency, p.Size)
	}
}

// LossRate returns the fraction of datagrams lost so far.
func (k *UDPSink) LossRate() float64 {
	total := k.Received + k.Lost
	if total == 0 {
		return 0
	}
	return float64(k.Lost) / float64(total)
}

// UDPFlow pairs a source and sink attached to a dumbbell.
type UDPFlow struct {
	ID     int
	Source *UDPSource
	Sink   *UDPSink
}

// AddUDP attaches a CBR flow to the dumbbell's forward path and starts it.
func (d *Dumbbell) AddUDP(rateBps float64, size int) *UDPFlow {
	id := d.nextID
	d.nextID++
	f := &UDPFlow{ID: id}
	f.Source = NewUDPSource(d.Sim, id, rateBps, size, d.Fwd.Send)
	f.Sink = NewUDPSink(d.Sim, id)
	d.udp[id] = f
	f.Source.Start()
	return f
}

// RemoveUDP stops and detaches a UDP flow.
func (d *Dumbbell) RemoveUDP(id int) bool {
	f, ok := d.udp[id]
	if !ok {
		return false
	}
	f.Source.Stop()
	delete(d.udp, id)
	return true
}

// UDPFlows returns the active UDP flows.
func (d *Dumbbell) UDPFlows() []*UDPFlow {
	out := make([]*UDPFlow, 0, len(d.udp))
	for _, f := range d.udp {
		out = append(out, f)
	}
	return out
}
