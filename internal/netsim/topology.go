package netsim

import (
	"fmt"
	"math/rand"
	"time"
)

// DumbbellConfig describes the emulated wide-area path of the paper's
// experiment (§2): a server and a client separated by a router that adds
// delay and a bandwidth constraint (the nistnet role), with either a
// DropTail or a RED/ECN queue at the bottleneck.
type DumbbellConfig struct {
	// RateBps is the bottleneck bandwidth in bits/second.
	RateBps float64
	// Delay is the one-way propagation delay of the bottleneck.
	Delay time.Duration
	// QueueCap is the router queue capacity in packets.
	QueueCap int
	// RED selects RED queueing (with ECN marking) instead of DropTail.
	RED bool
	// REDMinTh, REDMaxTh and REDMaxP are the RED parameters (packets,
	// packets, probability). Zero values choose QueueCap/6, QueueCap/2
	// and 0.1.
	REDMinTh, REDMaxTh, REDMaxP float64
	// TCP configures all senders.
	TCP TCPConfig
	// JitterMax is the maximum per-flow extra one-way delay, modeling
	// differing access paths and desynchronizing the flows.
	JitterMax time.Duration
	// Seed makes the run reproducible.
	Seed int64
}

// DefaultDumbbell returns the baseline topology used by the Figure 4/5
// reproduction: a 10 Mbit/s bottleneck with 25 ms one-way delay (≈50 ms
// RTT) and a 50-packet router queue.
func DefaultDumbbell() DumbbellConfig {
	return DumbbellConfig{
		RateBps:   10e6,
		Delay:     25 * time.Millisecond,
		QueueCap:  50,
		TCP:       DefaultTCPConfig(),
		JitterMax: 8 * time.Millisecond,
		Seed:      1,
	}
}

// Flow pairs a sender (at the server) with a receiver (at the client).
type Flow struct {
	ID       int
	Sender   *TCPSender
	Receiver *TCPReceiver

	jitterFwd time.Duration
	jitterRev time.Duration
}

// Dumbbell is the assembled topology: all senders share the bottleneck
// link toward the client; ACKs return over an uncongested reverse link.
type Dumbbell struct {
	Sim *Sim
	Cfg DumbbellConfig

	Fwd *Link // server → client (data)
	Rev *Link // client → server (ACKs)

	flows  map[int]*Flow
	udp    map[int]*UDPFlow
	order  []int
	nextID int
	rng    *rand.Rand

	retiredGoodput int64
	retiredTOs     int64
}

// NewDumbbell builds the topology on a fresh simulator.
func NewDumbbell(cfg DumbbellConfig) *Dumbbell {
	sim := NewSim()
	d := &Dumbbell{
		Sim:   sim,
		Cfg:   cfg,
		flows: make(map[int]*Flow),
		udp:   make(map[int]*UDPFlow),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}

	var q Queue
	if cfg.RED {
		minTh, maxTh, maxP := cfg.REDMinTh, cfg.REDMaxTh, cfg.REDMaxP
		if minTh == 0 {
			minTh = float64(cfg.QueueCap) / 6
		}
		if maxTh == 0 {
			maxTh = float64(cfg.QueueCap) / 2
		}
		if maxP == 0 {
			maxP = 0.1
		}
		q = NewRED(cfg.QueueCap, minTh, maxTh, maxP, cfg.Seed+1)
	} else {
		q = NewDropTail(cfg.QueueCap)
	}

	d.Fwd = NewLink(sim, cfg.RateBps, cfg.Delay, q, d.deliverToClient)
	// The reverse path is uncongested: generous FIFO, same propagation
	// delay, 100× the forward rate so ACKs never queue meaningfully.
	d.Rev = NewLink(sim, cfg.RateBps*100, cfg.Delay, NewDropTail(10000), d.deliverToServer)
	return d
}

// Queue returns the bottleneck queue discipline.
func (d *Dumbbell) Queue() Queue { return d.Fwd.Q }

func (d *Dumbbell) deliverToClient(p *Packet) {
	if uf, ok := d.udp[p.Flow]; ok {
		uf.Sink.OnPacket(p)
		return
	}
	f := d.flows[p.Flow]
	if f == nil {
		return
	}
	if f.jitterFwd > 0 {
		d.Sim.After(f.jitterFwd, func() { f.Receiver.OnPacket(p) })
	} else {
		f.Receiver.OnPacket(p)
	}
}

func (d *Dumbbell) deliverToServer(p *Packet) {
	f := d.flows[p.Flow]
	if f == nil {
		return
	}
	if f.jitterRev > 0 {
		d.Sim.After(f.jitterRev, func() { f.Sender.OnAck(p) })
	} else {
		f.Sender.OnAck(p)
	}
}

// AddFlow creates a flow transferring limitSegments segments (0 for an
// unbounded elephant) and starts it.
func (d *Dumbbell) AddFlow(limitSegments int64) *Flow {
	id := d.nextID
	d.nextID++
	f := &Flow{ID: id}
	if d.Cfg.JitterMax > 0 {
		f.jitterFwd = time.Duration(d.rng.Int63n(int64(d.Cfg.JitterMax)))
		f.jitterRev = time.Duration(d.rng.Int63n(int64(d.Cfg.JitterMax)))
	}
	f.Sender = NewTCPSender(d.Sim, id, d.Cfg.TCP, limitSegments, d.Fwd.Send)
	f.Receiver = NewTCPReceiver(d.Sim, id, d.Rev.Send)
	d.flows[id] = f
	d.order = append(d.order, id)
	f.Sender.Start()
	return f
}

// AddElephant starts an unbounded flow (the paper's long-lived flows).
func (d *Dumbbell) AddElephant() *Flow { return d.AddFlow(0) }

// RemoveFlow stops and detaches a flow; it reports whether it existed.
// In-flight packets for removed flows are discarded on delivery.
func (d *Dumbbell) RemoveFlow(id int) bool {
	f, ok := d.flows[id]
	if !ok {
		return false
	}
	f.Sender.Stop()
	d.retiredGoodput += f.Receiver.SegmentsReceived
	d.retiredTOs += f.Sender.Timeouts
	delete(d.flows, id)
	kept := d.order[:0]
	for _, fid := range d.order {
		if fid != id {
			kept = append(kept, fid)
		}
	}
	d.order = kept
	return true
}

// Flows returns the active flows in creation order.
func (d *Dumbbell) Flows() []*Flow {
	out := make([]*Flow, 0, len(d.order))
	for _, id := range d.order {
		out = append(out, d.flows[id])
	}
	return out
}

// Flow returns a flow by id, or nil.
func (d *Dumbbell) Flow(id int) *Flow { return d.flows[id] }

// NumFlows returns the number of active flows.
func (d *Dumbbell) NumFlows() int { return len(d.flows) }

// TotalTimeouts sums sender timeouts across all flows, including flows
// that have since been removed.
func (d *Dumbbell) TotalTimeouts() int64 {
	n := d.retiredTOs
	for _, f := range d.flows {
		n += f.Sender.Timeouts
	}
	return n
}

// GoodputSegments returns cumulative in-order segments delivered across
// all flows, including flows that have since been removed; callers compute
// rates from deltas.
func (d *Dumbbell) GoodputSegments() int64 {
	n := d.retiredGoodput
	for _, f := range d.flows {
		n += f.Receiver.SegmentsReceived
	}
	return n
}

// String summarizes the topology.
func (d *Dumbbell) String() string {
	kind := "DropTail"
	if d.Cfg.RED {
		kind = "RED/ECN"
	}
	return fmt.Sprintf("dumbbell %.0f Mbps, %s one-way, %s queue cap %d, %d flows",
		d.Cfg.RateBps/1e6, d.Cfg.Delay, kind, d.Cfg.QueueCap, len(d.flows))
}
