package netsim

// LossyConn is the datagram counterpart of ChaosProxy: where the proxy
// degrades live TCP connections, LossyConn wraps a net.PacketConn and
// degrades individual datagrams on the way out — seeded, reproducible
// loss, duplication, reordering and delay, plus whole-link partitions.
// Wrapping the *sender's* socket keeps the harness transparent to the
// receiver under test: it sees plain UDP arriving strangely, exactly
// what the internal/dgram chaos tests need.

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// LossyConfig sets the degradation knobs. The zero value forwards every
// datagram untouched.
type LossyConfig struct {
	// Loss is the probability in [0,1] that a datagram is dropped.
	Loss float64
	// Dup is the probability in [0,1] that a datagram is sent twice.
	Dup float64
	// Reorder is the probability in [0,1] that a datagram is held for
	// an extra ReorderDelay, letting later traffic overtake it.
	Reorder float64
	// ReorderDelay is how long a reordered datagram is held (default
	// 2ms, enough for several subsequent datagrams to pass it).
	ReorderDelay time.Duration
	// Delay is a base one-way delay added to every datagram; Jitter
	// adds a uniform random extra in [0, Jitter).
	Delay  time.Duration
	Jitter time.Duration
	// Seed fixes the randomness; 0 selects 1 so runs reproduce.
	Seed int64
}

// LossyConn wraps a net.PacketConn, applying LossyConfig to every
// WriteTo. Reads, addresses and deadlines pass straight through, so a
// dgram.Publisher on a LossyConn still hears NACKs cleanly — only its
// outbound data suffers. WriteTo never blocks the caller: delayed or
// reordered datagrams are re-sent from timer goroutines that Close
// waits out. It is safe for concurrent use.
type LossyConn struct {
	net.PacketConn
	cfg LossyConfig

	mu sync.Mutex
	//gscope:guardedby mu
	rng *rand.Rand
	//gscope:guardedby mu
	partitioned bool
	//gscope:guardedby mu
	closed bool
	//gscope:guardedby mu
	stats LossyStats

	done chan struct{}
	wg   sync.WaitGroup
}

// LossyStats counts what the link did to outbound datagrams.
type LossyStats struct {
	Sent       int64 // datagrams actually written to the wrapped conn
	Dropped    int64 // eaten by Loss or a partition
	Duplicated int64
	Reordered  int64
}

// NewLossyConn wraps conn. Close closes the wrapped conn too.
func NewLossyConn(conn net.PacketConn, cfg LossyConfig) *LossyConn {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ReorderDelay <= 0 {
		cfg.ReorderDelay = 2 * time.Millisecond
	}
	return &LossyConn{
		PacketConn: conn,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		done:       make(chan struct{}),
	}
}

// SetPartitioned stalls (true) or restores (false) the outbound link.
// Partitioned datagrams are dropped, as a real partition would — UDP
// has no queue to wait in.
func (c *LossyConn) SetPartitioned(on bool) {
	c.mu.Lock()
	c.partitioned = on
	c.mu.Unlock()
}

// Stats snapshots the link counters.
func (c *LossyConn) Stats() LossyStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// WriteTo applies the configured degradations to one datagram. It
// always reports success for datagrams the link ate: that is the UDP
// contract — the sender cannot tell.
func (c *LossyConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	if c.partitioned || c.roll(c.cfg.Loss) {
		c.stats.Dropped++
		c.mu.Unlock()
		return len(p), nil
	}
	delay := c.cfg.Delay
	if c.cfg.Jitter > 0 {
		delay += time.Duration(c.rng.Int63n(int64(c.cfg.Jitter)))
	}
	if c.roll(c.cfg.Reorder) {
		delay += c.cfg.ReorderDelay
		c.stats.Reordered++
	}
	dup := c.roll(c.cfg.Dup)
	if dup {
		c.stats.Duplicated++
	}
	c.mu.Unlock()

	n := 1
	if dup {
		n = 2
	}
	if delay <= 0 {
		for i := 0; i < n; i++ {
			c.forward(p, addr)
		}
		return len(p), nil
	}
	// Copy once; the caller reuses its buffer the moment we return.
	held := append([]byte(nil), p...)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		select {
		case <-time.After(delay):
			for i := 0; i < n; i++ {
				c.forward(held, addr)
			}
		case <-c.done:
			c.mu.Lock()
			c.stats.Dropped++
			c.mu.Unlock()
		}
	}()
	return len(p), nil
}

// roll returns true with probability pr. Caller holds mu.
//
//gscope:locked mu
func (c *LossyConn) roll(pr float64) bool {
	return pr > 0 && c.rng.Float64() < pr
}

// forward writes one datagram to the wrapped conn.
func (c *LossyConn) forward(p []byte, addr net.Addr) {
	if _, err := c.PacketConn.WriteTo(p, addr); err == nil {
		c.mu.Lock()
		c.stats.Sent++
		c.mu.Unlock()
	}
}

// Close drains in-flight delayed datagrams and closes the wrapped conn.
func (c *LossyConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	c.wg.Wait()
	return c.PacketConn.Close()
}
