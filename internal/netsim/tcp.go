package netsim

import (
	"math"
	"sort"
	"time"
)

// TCPConfig parameterizes a sender. The defaults model a 2002-era Linux
// stack: NewReno congestion control, 1460-byte MSS, 200 ms minimum RTO.
type TCPConfig struct {
	// MSS is the segment size in bytes.
	MSS int
	// InitCwnd is the initial congestion window in segments.
	InitCwnd float64
	// MaxCwnd caps the window (the receiver's advertised window), in
	// segments.
	MaxCwnd float64
	// MinRTO, InitRTO and MaxRTO bound the retransmission timer.
	MinRTO, InitRTO, MaxRTO time.Duration
	// ECN enables ECT marking and ECE/CWR response (RFC 3168).
	ECN bool
	// SACK enables selective acknowledgments: the receiver reports
	// out-of-order segments and the sender retransmits scoreboard holes
	// during recovery instead of one segment per RTT. The paper's
	// authors debugged their low-latency TCP variant's interaction with
	// SACK using gscope (§2), so the simulator carries the option.
	SACK bool
}

// DefaultTCPConfig returns the baseline configuration.
func DefaultTCPConfig() TCPConfig {
	return TCPConfig{
		MSS:      1460,
		InitCwnd: 2,
		MaxCwnd:  44, // ~64 KB window
		MinRTO:   200 * time.Millisecond,
		InitRTO:  time.Second,
		MaxRTO:   60 * time.Second,
	}
}

const ackSize = 40

// TCPSender is a NewReno-style sender transmitting an (optionally bounded)
// backlog of MSS-sized segments.
type TCPSender struct {
	sim *Sim
	cfg TCPConfig
	id  int
	out func(*Packet) // path toward the receiver

	running bool
	nextSeq int64 // next new segment
	sndUna  int64 // oldest unacknowledged segment

	cwnd     float64
	ssthresh float64

	dupacks    int
	inRecovery bool
	recover    int64

	srtt, rttvar time.Duration
	haveSRTT     bool
	backoff      int
	timing       bool
	timedSeq     int64
	timedAt      time.Duration
	rtoTimer     *Timer

	cwrPending bool
	ecnRecover int64

	// SACK scoreboard: segments the receiver holds out of order, and the
	// holes already retransmitted in the current recovery episode.
	sacked map[int64]bool
	resent map[int64]bool

	limit int64 // total segments; 0 = unbounded (elephant)
	done  bool

	// OnDone fires when a bounded transfer completes.
	OnDone func()

	// Counters exposed as scope signals by mxtraf.
	Timeouts        int64
	FastRetransmits int64
	ECNReductions   int64
	PktsSent        int64
	Retransmissions int64
	AckedSegments   int64
}

// NewTCPSender builds a sender for flow id writing packets to out.
// limitSegments of 0 gives an unbounded (elephant) transfer.
func NewTCPSender(sim *Sim, id int, cfg TCPConfig, limitSegments int64, out func(*Packet)) *TCPSender {
	if cfg.MSS <= 0 {
		cfg = DefaultTCPConfig()
	}
	return &TCPSender{
		sim:      sim,
		cfg:      cfg,
		id:       id,
		out:      out,
		cwnd:     cfg.InitCwnd,
		ssthresh: cfg.MaxCwnd,
		limit:    limitSegments,
		sacked:   make(map[int64]bool),
		resent:   make(map[int64]bool),
	}
}

// ID returns the flow identifier.
func (s *TCPSender) ID() int { return s.id }

// Cwnd returns the congestion window in segments — the CWND signal the
// paper plots in Figures 4 and 5.
func (s *TCPSender) Cwnd() float64 { return s.cwnd }

// Ssthresh returns the slow-start threshold in segments.
func (s *TCPSender) Ssthresh() float64 { return s.ssthresh }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *TCPSender) SRTT() time.Duration { return s.srtt }

// InFlight returns the number of unacknowledged segments.
func (s *TCPSender) InFlight() int64 { return s.nextSeq - s.sndUna }

// Done reports whether a bounded transfer has completed.
func (s *TCPSender) Done() bool { return s.done }

// Running reports whether the sender is active.
func (s *TCPSender) Running() bool { return s.running }

// Start begins transmitting.
func (s *TCPSender) Start() {
	if s.running || s.done {
		return
	}
	s.running = true
	s.trySend()
}

// Stop halts the sender (an elephant being torn down by mxtraf): the RTO
// timer is canceled and no further segments are sent.
func (s *TCPSender) Stop() {
	s.running = false
	if s.rtoTimer != nil {
		s.rtoTimer.Cancel()
		s.rtoTimer = nil
	}
}

// rto returns the current retransmission timeout with backoff applied.
func (s *TCPSender) rto() time.Duration {
	var base time.Duration
	if s.haveSRTT {
		base = s.srtt + 4*s.rttvar
	} else {
		base = s.cfg.InitRTO
	}
	if base < s.cfg.MinRTO {
		base = s.cfg.MinRTO
	}
	for i := 0; i < s.backoff; i++ {
		base *= 2
		if base >= s.cfg.MaxRTO {
			return s.cfg.MaxRTO
		}
	}
	if base > s.cfg.MaxRTO {
		base = s.cfg.MaxRTO
	}
	return base
}

func (s *TCPSender) armRTO() {
	if s.rtoTimer != nil {
		s.rtoTimer.Cancel()
	}
	s.rtoTimer = s.sim.After(s.rto(), s.onRTO)
}

func (s *TCPSender) sampleRTT(r time.Duration) {
	if !s.haveSRTT {
		s.srtt = r
		s.rttvar = r / 2
		s.haveSRTT = true
		return
	}
	diff := s.srtt - r
	if diff < 0 {
		diff = -diff
	}
	s.rttvar = (3*s.rttvar + diff) / 4
	s.srtt = (7*s.srtt + r) / 8
}

// OnAck processes an acknowledgment from the receiver.
func (s *TCPSender) OnAck(p *Packet) {
	if !s.running {
		return
	}
	if s.cfg.SACK {
		for _, seq := range p.Sacked {
			if seq >= s.sndUna {
				s.sacked[seq] = true
			}
		}
	}
	switch {
	case p.AckN > s.sndUna:
		s.onNewAck(p)
	case p.AckN == s.sndUna && s.nextSeq > s.sndUna:
		s.onDupAck()
	}
}

// sackDupThresh is the reordering tolerance: an unsacked segment more
// than this far below the highest SACKed segment is deemed lost
// (RFC 3517's IsLost).
const sackDupThresh = 3

// highestSacked returns the largest SACKed sequence, or -1.
func (s *TCPSender) highestSacked() int64 {
	high := int64(-1)
	for seq := range s.sacked {
		if seq > high {
			high = seq
		}
	}
	return high
}

// sackPipe estimates the number of segments in the network (RFC 3517
// "pipe"): in-flight segments that are neither SACKed nor deemed lost,
// plus retransmissions presumed still in flight.
func (s *TCPSender) sackPipe() int64 {
	high := s.highestSacked()
	var pipe int64
	for seq := s.sndUna; seq < s.nextSeq; seq++ {
		switch {
		case s.sacked[seq]:
			// Left the network.
		case s.resent[seq]:
			pipe++ // retransmission in flight
		case high >= 0 && seq <= high-sackDupThresh:
			// Deemed lost: not in the pipe.
		default:
			pipe++
		}
	}
	return pipe
}

// nextLostHole returns the lowest segment deemed lost and not yet resent,
// or -1 (RFC 3517's NextSeg rule 1).
func (s *TCPSender) nextLostHole() int64 {
	high := s.highestSacked()
	if high < 0 {
		return -1
	}
	for seq := s.sndUna; seq < s.nextSeq && seq <= high; seq++ {
		if !s.sacked[seq] && !s.resent[seq] && seq <= high-sackDupThresh {
			return seq
		}
	}
	return -1
}

// sackSend transmits while the pipe has room under cwnd: first repairing
// lost holes, then sending new data (RFC 3517 recovery send clock).
func (s *TCPSender) sackSend() {
	for float64(s.sackPipe()) < s.cwnd {
		if seq := s.nextLostHole(); seq >= 0 {
			s.resent[seq] = true
			s.sendSegment(seq, true)
			continue
		}
		if s.limit > 0 && s.nextSeq >= s.limit {
			return
		}
		if s.nextSeq >= s.sndUna+int64(s.cfg.MaxCwnd) {
			return
		}
		s.sendSegment(s.nextSeq, false)
		s.nextSeq++
	}
}

// dropScoreboardBelow forgets scoreboard state below the cumulative ACK.
func (s *TCPSender) dropScoreboardBelow(ack int64) {
	for seq := range s.sacked {
		if seq < ack {
			delete(s.sacked, seq)
		}
	}
	for seq := range s.resent {
		if seq < ack {
			delete(s.resent, seq)
		}
	}
}

func (s *TCPSender) onNewAck(p *Packet) {
	newly := p.AckN - s.sndUna
	s.sndUna = p.AckN
	s.AckedSegments += newly
	s.dupacks = 0
	s.backoff = 0

	if s.timing && p.AckN > s.timedSeq {
		s.sampleRTT(s.sim.Now() - s.timedAt)
		s.timing = false
	}

	s.dropScoreboardBelow(p.AckN)

	if s.inRecovery {
		if p.AckN >= s.recover {
			// Full acknowledgment: leave fast recovery, deflate.
			s.inRecovery = false
			s.cwnd = s.ssthresh
			s.resent = make(map[int64]bool)
		} else {
			// Partial ACK: stay in recovery. With SACK the pipe-driven
			// send clock repairs the exact holes; NewReno deflates and
			// resends the segment at the ACK, one hole per RTT.
			if s.cfg.SACK {
				s.sackSend()
			} else {
				s.cwnd = math.Max(s.ssthresh, s.cwnd-float64(newly)+1)
				s.retransmit()
			}
			s.armRTO()
		}
	} else if p.ECE && s.cfg.ECN && p.AckN > s.ecnRecover {
		// ECN congestion response: halve at most once per window
		// (RFC 3168); the receiver keeps echoing ECE until our CWR.
		s.ssthresh = math.Max(s.cwnd/2, 2)
		s.cwnd = s.ssthresh
		s.ecnRecover = s.nextSeq
		s.cwrPending = true
		s.ECNReductions++
	} else {
		if s.cwnd < s.ssthresh {
			s.cwnd += float64(newly) // slow start
		} else {
			s.cwnd += float64(newly) / s.cwnd // congestion avoidance
		}
		if s.cwnd > s.cfg.MaxCwnd {
			s.cwnd = s.cfg.MaxCwnd
		}
	}

	if s.nextSeq > s.sndUna {
		s.armRTO()
	} else if s.rtoTimer != nil {
		s.rtoTimer.Cancel()
		s.rtoTimer = nil
	}
	s.checkDone()
	s.trySend()
}

func (s *TCPSender) onDupAck() {
	s.dupacks++
	if s.inRecovery {
		if s.cfg.SACK {
			// The scoreboard (updated from this ACK) drives the send
			// clock; no artificial window inflation is needed.
			s.sackSend()
		} else {
			// Window inflation: each dupack signals a departed segment.
			s.cwnd++
			s.trySend()
		}
		return
	}
	if s.dupacks == 3 {
		s.ssthresh = math.Max(s.cwnd/2, 2)
		s.inRecovery = true
		s.recover = s.nextSeq
		s.FastRetransmits++
		s.timing = false // Karn: the retransmitted segment is not timed
		if s.cfg.SACK {
			s.cwnd = s.ssthresh
			s.resent = make(map[int64]bool)
			// The first retransmission goes out regardless of the pipe.
			if seq := s.nextLostHole(); seq >= 0 {
				s.resent[seq] = true
				s.sendSegment(seq, true)
			} else {
				s.resent[s.sndUna] = true
				s.sendSegment(s.sndUna, true)
			}
			s.sackSend()
		} else {
			s.cwnd = s.ssthresh + 3
			s.retransmit()
		}
		s.armRTO()
	}
}

func (s *TCPSender) onRTO() {
	s.rtoTimer = nil
	if !s.running || s.done || s.nextSeq == s.sndUna {
		return
	}
	s.Timeouts++
	s.ssthresh = math.Max(s.cwnd/2, 2)
	// Both TCP and ECN reduce the congestion window to one upon a timeout
	// (§2) — the CWND=1 floor visible in Figure 4.
	s.cwnd = 1
	s.dupacks = 0
	s.inRecovery = false
	s.backoff++
	s.timing = false
	s.resent = make(map[int64]bool)
	s.retransmit()
	s.armRTO()
}

// retransmit resends the oldest unacknowledged segment.
func (s *TCPSender) retransmit() {
	s.sendSegment(s.sndUna, true)
}

// trySend transmits new segments while the window allows.
func (s *TCPSender) trySend() {
	if !s.running || s.done {
		return
	}
	wnd := int64(math.Min(s.cwnd, s.cfg.MaxCwnd))
	if wnd < 1 {
		wnd = 1
	}
	for s.nextSeq < s.sndUna+wnd {
		if s.limit > 0 && s.nextSeq >= s.limit {
			break
		}
		if !s.timing {
			s.timing = true
			s.timedSeq = s.nextSeq
			s.timedAt = s.sim.Now()
		}
		s.sendSegment(s.nextSeq, false)
		s.nextSeq++
	}
	if s.nextSeq > s.sndUna && s.rtoTimer == nil {
		s.armRTO()
	}
}

func (s *TCPSender) sendSegment(seq int64, retrans bool) {
	p := &Packet{
		Flow:    s.id,
		Seq:     seq,
		Size:    s.cfg.MSS,
		ECT:     s.cfg.ECN,
		CWR:     s.cwrPending,
		SentAt:  s.sim.Now(),
		Retrans: retrans,
	}
	s.cwrPending = false
	s.PktsSent++
	if retrans {
		s.Retransmissions++
	}
	s.out(p)
}

func (s *TCPSender) checkDone() {
	if s.limit > 0 && !s.done && s.sndUna >= s.limit {
		s.done = true
		s.running = false
		if s.rtoTimer != nil {
			s.rtoTimer.Cancel()
			s.rtoTimer = nil
		}
		if s.OnDone != nil {
			s.OnDone()
		}
	}
}

// TCPReceiver acknowledges segments cumulatively, buffers out-of-order
// arrivals, and implements the ECN receiver side: CE arrivals latch ECE
// onto every ACK until a CWR data packet arrives.
type TCPReceiver struct {
	sim *Sim
	id  int
	out func(*Packet) // path toward the sender

	// SACK enables selective-acknowledgment reporting on ACKs.
	SACK bool
	// maxSackReport bounds the option size, like the 3-4 blocks that fit
	// a real TCP header.
	maxSackReport int

	rcvNext    int64
	ooo        map[int64]bool
	eceLatched bool

	// SegmentsReceived counts in-order segment deliveries (goodput).
	SegmentsReceived int64
	// DupSegments counts duplicate (already-delivered) arrivals.
	DupSegments int64
	// LastDelivery is the time of the most recent in-order advance, used
	// by mxtraf's latency signal.
	LastDelivery time.Duration
}

// NewTCPReceiver builds a receiver for flow id sending ACKs to out.
func NewTCPReceiver(sim *Sim, id int, out func(*Packet)) *TCPReceiver {
	return &TCPReceiver{sim: sim, id: id, out: out, ooo: make(map[int64]bool), maxSackReport: 16}
}

// sackReport collects the lowest out-of-order segments for the ACK's SACK
// option.
func (r *TCPReceiver) sackReport() []int64 {
	if !r.SACK || len(r.ooo) == 0 {
		return nil
	}
	out := make([]int64, 0, len(r.ooo))
	for seq := range r.ooo {
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) > r.maxSackReport {
		out = out[:r.maxSackReport]
	}
	return out
}

// RcvNext returns the next expected segment number.
func (r *TCPReceiver) RcvNext() int64 { return r.rcvNext }

// OnPacket processes a data segment and emits an ACK.
func (r *TCPReceiver) OnPacket(p *Packet) {
	if p.CE {
		r.eceLatched = true
	}
	if p.CWR {
		r.eceLatched = false
	}
	switch {
	case p.Seq == r.rcvNext:
		r.rcvNext++
		r.SegmentsReceived++
		for r.ooo[r.rcvNext] {
			delete(r.ooo, r.rcvNext)
			r.rcvNext++
			r.SegmentsReceived++
		}
		r.LastDelivery = r.sim.Now()
	case p.Seq > r.rcvNext:
		r.ooo[p.Seq] = true
	default:
		r.DupSegments++
	}
	r.out(&Packet{
		Flow:   r.id,
		Ack:    true,
		AckN:   r.rcvNext,
		Size:   ackSize,
		ECE:    r.eceLatched,
		Sacked: r.sackReport(),
		SentAt: r.sim.Now(),
	})
}
