package netsim

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
)

// udpSink counts datagrams arriving on a loopback socket.
func udpSink(t *testing.T) (net.Addr, *int64, func()) {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var count int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 2048)
		for {
			if _, _, err := conn.ReadFrom(buf); err != nil {
				return
			}
			atomic.AddInt64(&count, 1)
		}
	}()
	return conn.LocalAddr(), &count, func() { conn.Close(); <-done }
}

func lossyOut(t *testing.T, cfg LossyConfig) *LossyConn {
	t.Helper()
	inner, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewLossyConn(inner, cfg)
	t.Cleanup(func() { c.Close() })
	return c
}

func TestLossyConnTransparentByDefault(t *testing.T) {
	addr, count, stop := udpSink(t)
	defer stop()
	c := lossyOut(t, LossyConfig{})
	for i := 0; i < 50; i++ {
		if _, err := c.WriteTo([]byte("x"), addr); err != nil {
			t.Fatal(err)
		}
	}
	if !testutil.Poll(5*time.Second, func() bool { return atomic.LoadInt64(count) == 50 }) {
		t.Fatalf("sink got %d datagrams, want 50", atomic.LoadInt64(count))
	}
	st := c.Stats()
	if st.Sent != 50 || st.Dropped != 0 || st.Duplicated != 0 || st.Reordered != 0 {
		t.Fatalf("zero-config link touched traffic: %+v", st)
	}
}

func TestLossyConnLossAccounting(t *testing.T) {
	addr, count, stop := udpSink(t)
	defer stop()
	c := lossyOut(t, LossyConfig{Loss: 0.3, Seed: 42})
	const n = 500
	for i := 0; i < n; i++ {
		c.WriteTo([]byte("x"), addr)
		if i%20 == 19 {
			// Pace the burst so the loopback socket buffer, not our
			// link, decides nothing extra gets dropped.
			time.Sleep(time.Millisecond)
		}
	}
	st := c.Stats()
	if st.Dropped == 0 || st.Dropped == n {
		t.Fatalf("30%% loss dropped %d of %d", st.Dropped, n)
	}
	if st.Sent+st.Dropped != n {
		t.Fatalf("accounting leak: sent %d + dropped %d != %d", st.Sent, st.Dropped, n)
	}
	want := st.Sent
	if !testutil.Poll(5*time.Second, func() bool { return atomic.LoadInt64(count) == want }) {
		t.Fatalf("sink got %d datagrams, link says it sent %d", atomic.LoadInt64(count), want)
	}
}

func TestLossyConnSeedReproducible(t *testing.T) {
	addr, _, stop := udpSink(t)
	defer stop()
	drops := func(seed int64) int64 {
		c := lossyOut(t, LossyConfig{Loss: 0.25, Seed: seed})
		for i := 0; i < 300; i++ {
			c.WriteTo([]byte("x"), addr)
		}
		return c.Stats().Dropped
	}
	if a, b := drops(7), drops(7); a != b {
		t.Fatalf("same seed, different drop pattern: %d vs %d", a, b)
	}
	if a, b := drops(7), drops(8); a == b {
		// Not impossible, but with 300 rolls at 25% it means the seed is
		// being ignored.
		t.Fatalf("different seeds produced identical drops (%d)", a)
	}
}

func TestLossyConnDuplicates(t *testing.T) {
	addr, count, stop := udpSink(t)
	defer stop()
	c := lossyOut(t, LossyConfig{Dup: 1})
	for i := 0; i < 20; i++ {
		c.WriteTo([]byte("x"), addr)
	}
	if !testutil.Poll(5*time.Second, func() bool { return atomic.LoadInt64(count) == 40 }) {
		t.Fatalf("sink got %d datagrams, want 40 (every one duplicated)", atomic.LoadInt64(count))
	}
	if st := c.Stats(); st.Duplicated != 20 {
		t.Fatalf("stats %+v, want 20 duplicated", st)
	}
}

func TestLossyConnDelayAndReorder(t *testing.T) {
	addr, count, stop := udpSink(t)
	defer stop()
	c := lossyOut(t, LossyConfig{Reorder: 0.5, ReorderDelay: 5 * time.Millisecond, Jitter: time.Millisecond, Seed: 3})
	const n = 200
	for i := 0; i < n; i++ {
		c.WriteTo([]byte("x"), addr)
	}
	// Delayed datagrams are still in flight when WriteTo returns; every
	// one must eventually land.
	if !testutil.Poll(5*time.Second, func() bool { return atomic.LoadInt64(count) == n }) {
		t.Fatalf("sink got %d datagrams, want %d", atomic.LoadInt64(count), n)
	}
	if st := c.Stats(); st.Reordered == 0 {
		t.Fatalf("50%% reorder reordered nothing: %+v", st)
	}
}

func TestLossyConnPartition(t *testing.T) {
	addr, count, stop := udpSink(t)
	defer stop()
	c := lossyOut(t, LossyConfig{})
	c.SetPartitioned(true)
	for i := 0; i < 10; i++ {
		c.WriteTo([]byte("x"), addr)
	}
	if st := c.Stats(); st.Dropped != 10 || st.Sent != 0 {
		t.Fatalf("partitioned link leaked: %+v", st)
	}
	c.SetPartitioned(false)
	c.WriteTo([]byte("x"), addr)
	if !testutil.Poll(5*time.Second, func() bool { return atomic.LoadInt64(count) == 1 }) {
		t.Fatal("healed link did not forward")
	}
}

func TestLossyConnCloseDrainsInFlight(t *testing.T) {
	addr, _, stop := udpSink(t)
	inner, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewLossyConn(inner, LossyConfig{Delay: 20 * time.Millisecond})
	for i := 0; i < 5; i++ {
		c.WriteTo([]byte("x"), addr)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := c.WriteTo([]byte("x"), addr); err == nil {
		t.Fatal("write after close succeeded")
	}
	stop()
	if err := testutil.CheckLeaksWithin(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}
