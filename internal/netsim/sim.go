// Package netsim is a packet-level discrete-event network simulator. It
// stands in for the paper's physical testbed — a Linux router running
// nistnet between a client and a server machine (§2) — so the TCP/ECN
// experiment of Figures 4 and 5 can be reproduced without hardware: links
// model bandwidth serialization and propagation delay, router queues model
// DropTail and RED (with ECN marking), and endpoints run a NewReno-style
// TCP with slow start, AIMD congestion avoidance, fast
// retransmit/recovery, retransmission timeouts with exponential backoff,
// and optional ECN response.
package netsim

import (
	"container/heap"
	"time"
)

type event struct {
	at  time.Duration
	seq int64
	fn  func()
	idx int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Timer is a cancelable scheduled event.
type Timer struct {
	ev *event
}

// Cancel prevents the timer's callback from running. Canceling a fired or
// nil timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.fn = nil
	}
}

// Sim is the discrete-event simulator core: a virtual clock and an event
// queue.
type Sim struct {
	now    time.Duration
	events eventHeap
	seq    int64
	count  int64
}

// NewSim returns a simulator at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulated time.
func (s *Sim) Now() time.Duration { return s.now }

// Processed returns the number of events dispatched.
func (s *Sim) Processed() int64 { return s.count }

// At schedules fn at absolute simulated time t (clamped to now).
func (s *Sim) At(t time.Duration, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e := &event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.events, e)
	return &Timer{ev: e}
}

// After schedules fn to run d from now.
func (s *Sim) After(d time.Duration, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// RunUntil dispatches events in time order until the queue is empty or the
// next event lies beyond t; the clock finishes at exactly t. Canceled
// events are skipped.
func (s *Sim) RunUntil(t time.Duration) {
	for len(s.events) > 0 && s.events[0].at <= t {
		e := heap.Pop(&s.events).(*event)
		if e.fn == nil {
			continue
		}
		s.now = e.at
		s.count++
		e.fn()
	}
	if t > s.now {
		s.now = t
	}
}

// Pending returns the number of queued events (including canceled ones not
// yet reaped).
func (s *Sim) Pending() int { return len(s.events) }
