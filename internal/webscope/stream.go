package webscope

import (
	"bufio"
	"errors"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/netscope"
	"repro/internal/tuple"
)

// The live-stream lanes. Each browser client becomes a real v2
// subscriber: the gateway makes a net.Pipe, hands the hub one end via
// Server.SubscribeWith (on the loop goroutine), and pumps the other end
// — so filtering, decimation, snapshot/backfill and the
// shared-encoding-per-filter-signature fan-out are all the hub's
// existing machinery. On the browser side every client gets a bounded
// drop-oldest eventQueue and a writer goroutine, mirroring the TCP
// path's WriteWatch discipline: a stalled tab drops its own oldest
// events and never blocks the hub or anyone else.
//
// Stream events (SSE `event:`/`data:` pairs; WebSocket text messages
// `{"event":E,"data":D}`):
//
//	hello   {"proto":2,"format":...,...}     gateway ack, applied request
//	batch   [[timeMS,value,"name"],...]      tuples (snapshot, backfill, live)
//	param   {"name":N,"value":V}             parameter change or reply
//	control {"verb":V,"fields":[...]}        any other hub control frame
//	error   {"error":MSG}                    hub-reported error
//
// format=binary (WebSocket only) replaces all of the above after hello
// with binary messages carrying the hub's v3 frame stream verbatim —
// zero re-encode, message boundaries are not frame boundaries, decode
// with tuple.StreamDecoder semantics (docs/WIRE.md).

var (
	errShutdown       = errors.New("webscope: gateway shutting down")
	errTooManyClients = errors.New("webscope: too many stream clients")
	errPeerClosed     = errors.New("webscope: peer sent close")
)

// writeTimeout bounds one browser write; a tab stalled longer than this
// is disconnected (and Gateway.Close is never stuck behind it for more
// than one timeout).
const writeTimeout = 10 * time.Second

// stream is one live SSE or WebSocket client.
type stream struct {
	g    *Gateway
	q    *eventQueue
	pipe net.Conn // gateway end; the hub owns the other end
	// frame renders one event in the lane's framing into dst.
	frame func(dst []byte, event string, data []byte) []byte
	// conn is the hijacked WebSocket connection (nil for SSE).
	conn net.Conn

	slots int // WaitGroup reservations made in addStream
	once  sync.Once
	done  chan struct{}
}

// shutdown tears the stream down from any goroutine, idempotently:
// closing the pipe unblocks the pump and makes the hub unsubscribe;
// closing the queue unblocks the writer; closing conn unblocks a
// WebSocket reader or a stuck write.
func (st *stream) shutdown() {
	st.once.Do(func() {
		close(st.done)
		st.pipe.Close()
		st.q.close()
		if st.conn != nil {
			st.conn.Close()
		}
	})
}

// openStream registers a stream client and subscribes its pipe to the
// hub. goroutines is how many stream goroutines the caller will run
// (each must defer st.exit). On error nothing is registered.
func (g *Gateway) openStream(req netscope.SubscriptionRequest, goroutines int) (*stream, error) {
	st := &stream{
		g:     g,
		q:     newEventQueue(g.opts.QueueLimit),
		done:  make(chan struct{}),
		slots: goroutines,
	}
	ours, theirs := net.Pipe()
	st.pipe = ours
	if err := g.addStream(st, goroutines); err != nil {
		ours.Close()
		theirs.Close()
		return nil, err
	}
	var serr error
	if !g.invoke(func() { serr = g.srv.SubscribeWith(theirs, req) }) {
		serr = errShutdown
	}
	if serr != nil {
		g.dropStream(st)
		g.wg.Add(-goroutines)
		ours.Close()
		theirs.Close()
		return nil, serr
	}
	g.web.StreamOpen()
	return st, nil
}

// exit is every stream goroutine's deferred bookkeeping.
func (st *stream) exit() {
	st.g.wg.Done()
}

// release finishes a stream: final drop accounting, registry removal.
// Called once, by the handler goroutine, after shutdown.
func (st *stream) release() {
	st.g.web.AddDropped(st.q.drops())
	st.g.web.StreamClose()
	st.g.dropStream(st)
}

// emit frames one event and queues it; dropped events are recycled and
// accounted.
func (st *stream) emit(event string, data []byte) {
	buf := st.g.getBuf()
	buf = st.frame(buf, event, data)
	st.recycle(st.q.push(buf))
}

// emitRaw queues an already-framed buffer (binary lane, control frames).
func (st *stream) emitRaw(buf []byte, protected bool) {
	if protected {
		st.recycle(st.q.pushProtected(buf))
		return
	}
	st.recycle(st.q.push(buf))
}

func (st *stream) recycle(dropped [][]byte) {
	for _, d := range dropped {
		st.g.putBuf(d)
	}
}

// --- Query-parameter mapping ------------------------------------------------

// streamRequest maps /v1/stream and /v1/ws query parameters onto a v2
// SubscriptionRequest (the table in docs/HTTP.md):
//
//	signals=a,b.*   → Signals (comma-separated patterns, may repeat)
//	max-rate=30     → MaxRate (tuples/sec per signal)
//	since=-10000    → Since (ms; negative = trailing window; or a Go
//	                  duration like "-10s")
//	cols=512        → Cols (decimated backfill resolution)
//	stream=0        → NoStream (control plane only)
//
// format selects the payload framing: "json" (default) or "binary"
// (WebSocket only; sets Wire=3).
func streamRequest(q url.Values) (netscope.SubscriptionRequest, string, error) {
	var req netscope.SubscriptionRequest
	for _, v := range q["signals"] {
		for _, p := range strings.Split(v, ",") {
			if p != "" {
				req.Signals = append(req.Signals, p)
			}
		}
	}
	if s := q.Get("max-rate"); s != "" {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return req, "", errors.New("bad max-rate: " + s)
		}
		req.MaxRate = f
	}
	if s := q.Get("since"); s != "" {
		d, err := parseSinceMS(s)
		if err != nil {
			return req, "", err
		}
		req.Since = d
	}
	if s := q.Get("cols"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			return req, "", errors.New("bad cols: " + s)
		}
		req.Cols = n
	}
	if s := q.Get("stream"); s == "0" || s == "false" {
		req.NoStream = true
	}
	format := q.Get("format")
	if format == "" {
		format = "json"
	}
	if err := req.Validate(); err != nil {
		return req, "", err
	}
	return req, format, nil
}

// parseSinceMS accepts milliseconds ("-10000") or a Go duration ("-10s").
func parseSinceMS(s string) (time.Duration, error) {
	if ms, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Duration(ms) * time.Millisecond, nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		return d, nil
	}
	return 0, errors.New("bad since (want ms or duration): " + s)
}

// helloData renders the hello event payload: the applied request.
func helloData(dst []byte, req netscope.SubscriptionRequest, format string) []byte {
	dst = append(dst, `{"proto":2,"format":"`...)
	dst = append(dst, format...)
	dst = append(dst, `","signals":[`...)
	for i, s := range req.Signals {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = tuple.AppendJSONString(dst, s)
	}
	dst = append(dst, `],"maxRate":`...)
	dst = tuple.AppendJSONValue(dst, req.MaxRate)
	dst = append(dst, `,"sinceMS":`...)
	dst = strconv.AppendInt(dst, req.Since.Milliseconds(), 10)
	dst = append(dst, `,"cols":`...)
	dst = strconv.AppendInt(dst, int64(req.Cols), 10)
	dst = append(dst, `,"stream":`...)
	dst = strconv.AppendBool(dst, !req.NoStream)
	return append(dst, '}')
}

// --- The JSON pump -----------------------------------------------------------

// pumpJSON decodes the hub's stream (text lines and/or v3 binary
// frames) and re-emits it as JSON events until the pipe closes. Runs on
// the handler goroutine; per-iteration state lives in reused buffers so
// the steady-state cost is the JSON encode itself.
func (st *stream) pumpJSON() {
	dec := tuple.NewStreamDecoder()
	rbuf := make([]byte, 32*1024)
	var batch []tuple.Tuple
	var data []byte
	appendTuples := func(b []tuple.Tuple) { batch = append(batch, b...) }
	handleLine := func(line string) { batch = st.controlLine(line, batch, &data) }
	for {
		n, rerr := st.pipe.Read(rbuf)
		if n > 0 {
			batch = batch[:0]
			ferr := dec.Feed(rbuf[:n], handleLine, appendTuples)
			if len(batch) > 0 {
				data = tuple.AppendJSONBatch(data[:0], batch)
				st.emit("batch", data)
			}
			if ferr != nil {
				data = append(data[:0], `{"error":"undecodable hub stream"}`...)
				st.emit("error", data)
				return
			}
		}
		if rerr != nil {
			return
		}
	}
}

// controlLine routes one hub line: tuples accumulate into batch, control
// frames become their own events (flushing batched tuples first so
// ordering survives). scratch is the caller's encode buffer.
func (st *stream) controlLine(line string, batch []tuple.Tuple, scratch *[]byte) []tuple.Tuple {
	if !tuple.IsComment(line) {
		t, err := tuple.Parse(line)
		if err == nil {
			return append(batch, t)
		}
		return batch
	}
	cf, ok := tuple.ParseControl(line)
	if !ok {
		return batch
	}
	if len(batch) > 0 {
		*scratch = tuple.AppendJSONBatch((*scratch)[:0], batch)
		st.emit("batch", *scratch)
		batch = batch[:0]
	}
	data := (*scratch)[:0]
	switch cf.Verb {
	case "param", "param-ok":
		v, err := strconv.ParseFloat(cf.Arg(1), 64)
		if err != nil {
			return batch
		}
		data = append(data, `{"name":`...)
		data = tuple.AppendJSONString(data, cf.Arg(0))
		data = append(data, `,"value":`...)
		data = tuple.AppendJSONValue(data, v)
		data = append(data, '}')
		st.emit("param", data)
	case "error":
		data = append(data, `{"error":`...)
		data = tuple.AppendJSONString(data, strings.Join(cf.Fields, " "))
		data = append(data, '}')
		st.emit("error", data)
	default:
		data = append(data, `{"verb":`...)
		data = tuple.AppendJSONString(data, cf.Verb)
		data = append(data, `,"fields":[`...)
		for i, f := range cf.Fields {
			if i > 0 {
				data = append(data, ',')
			}
			data = tuple.AppendJSONString(data, f)
		}
		data = append(data, `]}`...)
		st.emit("control", data)
	}
	*scratch = data
	return batch
}

// pumpBinary relays the hub's raw v3 byte stream as WebSocket binary
// messages — no decode, no re-encode; the per-client cost is one copy
// into the queue buffer plus the 2–10 byte frame header.
func (st *stream) pumpBinary() {
	rbuf := make([]byte, 32*1024)
	for {
		n, rerr := st.pipe.Read(rbuf)
		if n > 0 {
			buf := st.g.getBuf()
			buf = appendWSFrame(buf, opBinary, rbuf[:n])
			st.emitRaw(buf, false)
		}
		if rerr != nil {
			return
		}
	}
}

// --- SSE ---------------------------------------------------------------------

// appendSSEEvent renders one Server-Sent Event. data must be
// newline-free, which the JSON encoders guarantee.
//
//gscope:hotpath
func appendSSEEvent(dst []byte, event string, data []byte) []byte {
	dst = append(dst, "event: "...)
	dst = append(dst, event...)
	dst = append(dst, "\ndata: "...)
	dst = append(dst, data...)
	return append(dst, '\n', '\n')
}

// handleSSE serves GET /v1/stream: a live JSON event stream.
func (g *Gateway) handleSSE(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "stream requires GET")
		return
	}
	req, format, err := streamRequest(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if format != "json" {
		httpError(w, http.StatusBadRequest, "SSE supports format=json only (binary needs /v1/ws)")
		return
	}
	rc := http.NewResponseController(w)
	st, err := g.openStream(req, 3) // handler pump, writer, context watcher
	if err != nil {
		httpError(w, streamErrCode(err), err.Error())
		return
	}
	defer st.exit()
	st.frame = appendSSEEvent

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	writerDone := make(chan struct{})
	go func() {
		defer st.exit()
		defer close(writerDone)
		for {
			buf, ok := st.q.pop()
			if !ok {
				return
			}
			rc.SetWriteDeadline(time.Now().Add(writeTimeout)) //nolint:errcheck // unsupported writers just lack the stall bound
			_, werr := w.Write(buf)
			if werr == nil {
				werr = rc.Flush()
			}
			g.web.AddBytes(int64(len(buf)))
			g.putBuf(buf)
			if werr != nil {
				st.shutdown()
				return
			}
		}
	}()
	// The context watcher turns a browser disconnect into a shutdown even
	// when the hub is idle (no event write would ever fail).
	go func() {
		defer st.exit()
		select {
		case <-r.Context().Done():
			st.shutdown()
		case <-st.done:
		}
	}()

	data := helloData(g.getBuf(), req, format)
	st.emit("hello", data)
	g.putBuf(data)
	st.pumpJSON()
	st.shutdown()
	<-writerDone
	st.release()
}

// --- WebSocket ---------------------------------------------------------------

// appendWSJSONEvent renders one event as a WebSocket text message
// {"event":E,"data":D}.
//
//gscope:hotpath
func appendWSJSONEvent(dst []byte, event string, data []byte) []byte {
	n := len(`{"event":"`) + len(event) + len(`","data":`) + len(data) + 1
	dst = appendWSHeader(dst, opText, n)
	dst = append(dst, `{"event":"`...)
	dst = append(dst, event...)
	dst = append(dst, `","data":`...)
	dst = append(dst, data...)
	return append(dst, '}')
}

// handleWS serves GET /v1/ws: the WebSocket lane. Text messages carry
// the same events as SSE; with format=binary the payload is the hub's
// v3 byte stream. Inbound text messages are v2 command lines ("param
// set delay-ms 80") forwarded to the hub verbatim; replies come back as
// param/error events.
func (g *Gateway) handleWS(w http.ResponseWriter, r *http.Request) {
	req, format, err := streamRequest(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if format != "json" && format != "binary" {
		httpError(w, http.StatusBadRequest, "format must be json or binary")
		return
	}
	if format == "binary" {
		req.Wire = 3
	}
	st, err := g.openStream(req, 3) // handler pump, writer, frame reader
	if err != nil {
		httpError(w, streamErrCode(err), err.Error())
		return
	}
	defer st.exit()
	conn, br, err := wsAccept(w, r)
	if err != nil {
		// wsAccept already wrote the HTTP error (or the conn died).
		st.shutdown()
		g.wg.Add(-2) // writer and reader were never started
		st.release()
		return
	}
	st.conn = conn
	st.frame = appendWSJSONEvent

	writerDone := make(chan struct{})
	go func() {
		defer st.exit()
		defer close(writerDone)
		for {
			buf, ok := st.q.pop()
			if !ok {
				return
			}
			conn.SetWriteDeadline(time.Now().Add(writeTimeout)) //nolint:errcheck // net.Conn deadline
			_, werr := conn.Write(buf)
			g.web.AddBytes(int64(len(buf)))
			g.putBuf(buf)
			if werr != nil {
				st.shutdown()
				return
			}
		}
	}()
	go func() {
		defer st.exit()
		st.readFrames(br)
		// The peer closed (or broke protocol): the close echo is already
		// queued. Stop the hub feed, then let the writer drain it before
		// the handler tears the connection down.
		st.pipe.Close()
		st.q.finish()
	}()

	data := helloData(g.getBuf(), req, format)
	st.emit("hello", data)
	g.putBuf(data)
	if format == "binary" {
		st.pumpBinary()
	} else {
		st.pumpJSON()
	}
	// Drain-close: anything queued (in particular a close echo) reaches
	// the wire before the connection drops. Gateway.Close preempts the
	// drain by closing the queue outright.
	st.q.finish()
	<-writerDone
	st.shutdown()
	st.release()
}

// readFrames is the WebSocket inbound loop: answers pings, honors close,
// and forwards text messages to the hub as command lines.
func (st *stream) readFrames(br *bufio.Reader) {
	ctrl := func(op byte, payload []byte) error {
		switch op {
		case opPing:
			buf := st.g.getBuf()
			buf = appendWSFrame(buf, opPong, payload)
			st.emitRaw(buf, true)
		case opClose:
			buf := st.g.getBuf()
			code := closeNormal
			if len(payload) >= 2 {
				code = int(payload[0])<<8 | int(payload[1])
			}
			buf = appendWSClose(buf, code, "")
			st.emitRaw(buf, true)
			return errPeerClosed
		}
		return nil
	}
	for {
		op, msg, err := st.readOneMessage(br, ctrl)
		if err != nil {
			if errors.Is(err, errWSProtocol) || errors.Is(err, errWSTooBig) {
				buf := st.g.getBuf()
				code := closeProtocolError
				if errors.Is(err, errWSTooBig) {
					code = closeTooBig
				}
				buf = appendWSClose(buf, code, "")
				st.emitRaw(buf, true)
			}
			return
		}
		if op != opText {
			continue
		}
		line := strings.TrimRight(string(msg), "\r\n")
		if line == "" || strings.ContainsAny(line, "\n\r") {
			continue
		}
		// Forward to the hub's command plane; the reply comes back down
		// the stream as a param/error event.
		st.pipe.SetWriteDeadline(time.Now().Add(writeTimeout)) //nolint:errcheck // net.Pipe supports deadlines
		if _, err := st.pipe.Write(append([]byte(line), '\n')); err != nil {
			return
		}
	}
}

func (st *stream) readOneMessage(br *bufio.Reader, ctrl func(byte, []byte) error) (byte, []byte, error) {
	return readWSMessage(br, true, ctrl)
}

// streamErrCode maps openStream failures onto HTTP statuses.
func streamErrCode(err error) int {
	switch {
	case errors.Is(err, errTooManyClients):
		return http.StatusServiceUnavailable
	case errors.Is(err, errShutdown):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}
