package webscope

import "sync"

// eventQueue is the per-client bounded drop-oldest outbound queue, the
// web lane's analogue of glib.WriteWatch: the pump goroutine (hub side)
// pushes framed events, the writer goroutine (browser side) pops and
// writes, and when the browser can't keep up the oldest droppable event
// goes overboard rather than growing the queue or blocking the hub.
// Control events (WebSocket pong and close frames) push protected: they
// are never dropped, or the peer would hang its keepalive on our
// congestion.
type eventQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	//gscope:guardedby mu
	items []queuedEvent
	//gscope:guardedby mu
	dropped int64
	//gscope:guardedby mu
	closed bool
	// finishing makes pop drain what is queued and then report closed,
	// instead of discarding — the WebSocket lane's close-echo frames
	// must reach the wire after the reader has already quit.
	//gscope:guardedby mu
	finishing bool
	limit     int
}

type queuedEvent struct {
	data      []byte
	protected bool
}

func newEventQueue(limit int) *eventQueue {
	q := &eventQueue{limit: limit}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues data (ownership transfers to the queue), dropping the
// oldest droppable event when full. It reports how many events were
// dropped (0 or 1) so the caller can recycle their buffers and account
// the loss.
func (q *eventQueue) push(data []byte) (dropped [][]byte) {
	return q.enqueue(data, false)
}

// pushProtected enqueues data exempt from drop-oldest; the queue may
// exceed its limit by the number of protected events in flight (small:
// one pong or close at a time).
func (q *eventQueue) pushProtected(data []byte) (dropped [][]byte) {
	return q.enqueue(data, true)
}

func (q *eventQueue) enqueue(data []byte, protected bool) (dropped [][]byte) {
	q.mu.Lock()
	if q.closed || q.finishing {
		q.mu.Unlock()
		return [][]byte{data}
	}
	if !protected {
		for len(q.items) >= q.limit {
			i := q.firstDroppableLocked()
			if i < 0 {
				break
			}
			q.dropped++
			dropped = append(dropped, q.items[i].data)
			q.items = append(q.items[:i], q.items[i+1:]...)
		}
	}
	q.items = append(q.items, queuedEvent{data: data, protected: protected})
	q.mu.Unlock()
	q.cond.Signal()
	return dropped
}

// firstDroppable returns the oldest non-protected index; caller holds mu.
func (q *eventQueue) firstDroppableLocked() int {
	for i, it := range q.items {
		if !it.protected {
			return i
		}
	}
	return -1
}

// pop blocks for the next event; ok is false once the queue is closed
// (remaining events are discarded — shutdown is prompt by design) or
// finished and empty (everything queued has drained).
func (q *eventQueue) pop() (data []byte, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.closed && !q.finishing && len(q.items) == 0 {
		q.cond.Wait()
	}
	if q.closed || len(q.items) == 0 {
		return nil, false
	}
	data = q.items[0].data
	q.items = q.items[1:]
	return data, true
}

// finish refuses further pushes and lets the writer drain what is
// already queued before pop reports closed. The drain is bounded: the
// queue is bounded and every write carries a deadline. close still
// preempts it for prompt shutdown.
func (q *eventQueue) finish() {
	q.mu.Lock()
	q.finishing = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// close wakes the writer and discards anything queued.
func (q *eventQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.items = nil
	q.mu.Unlock()
	q.cond.Broadcast()
}

// drops returns how many events drop-oldest has discarded.
func (q *eventQueue) drops() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}
