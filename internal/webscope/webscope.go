// Package webscope is the hub's HTTP face: a stdlib-only gateway that
// bridges the v2 subscriber protocol to browsers. It serves live tuple
// streams over Server-Sent Events and a hand-rolled RFC 6455 WebSocket
// endpoint (ws.go — no external deps, the internal/vet precedent),
// historical min/max envelope queries over the hub's tiered backfill
// store as JSON or server-rendered PNG (view.go), REST access to the
// control-parameter registry (params.go), flight-recorder session
// listing and time-window queries (sessions.go), and a small embedded
// HTML+canvas dashboard at / so `gscoped -http :8080` is a usable live
// scope with zero other tooling.
//
// Threading: every piece of hub state is owned by the server's glib
// loop goroutine, while net/http runs handlers on arbitrary goroutines.
// The gateway never touches hub state directly — stream subscriptions
// ride net.Pipe into Server.SubscribeWith and reads marshal through
// Loop().Invoke (see Gateway.invoke). Each stream client gets the same
// treatment a TCP subscriber gets: the hub end of its pipe is a real v2
// subscription (shared encodings per filter signature, server-side
// decimation, snapshot/backfill), and the browser end rides a bounded
// drop-oldest event queue so one stalled tab never blocks the hub or
// another viewer. Endpoint reference: docs/HTTP.md.
package webscope

import (
	"encoding/json"
	"net/http"
	"sync"

	"repro/internal/netscope"
)

const (
	// DefaultMaxClients bounds concurrent stream clients (SSE plus
	// WebSocket); further stream requests get 503.
	DefaultMaxClients = 64
	// DefaultQueueLimit bounds each stream client's outbound event queue
	// (drop-oldest beyond it).
	DefaultQueueLimit = 256
)

// Options configures a Gateway. The zero value is usable.
type Options struct {
	// MaxClients bounds concurrent stream clients; non-positive selects
	// DefaultMaxClients.
	MaxClients int
	// QueueLimit bounds each stream client's outbound event queue in
	// events (drop-oldest); non-positive selects DefaultQueueLimit.
	QueueLimit int
	// NoDashboard disables the embedded dashboard at / (the API
	// endpoints stay mounted).
	NoDashboard bool
}

// Gateway is the web attachment: an http.Handler over a netscope.Server.
// Construct with New, mount with Server.ListenWeb (which also wires
// teardown into Server.Close). Gateway implements netscope.WebHandler.
type Gateway struct {
	srv  *netscope.Server
	web  *netscope.WebCounters
	opts Options
	mux  *http.ServeMux

	// stop closes when the gateway shuts down; handlers blocked on the
	// loop or on a queue select on it.
	stop chan struct{}

	// bufPool recycles event encode buffers between stream emitters and
	// their writer goroutines.
	bufPool sync.Pool

	// mu guards the stream-client registry and the shutdown flag. The
	// WaitGroup counts every stream goroutine; Close waits for it, which
	// is what makes Server.Close leak-free with writers in flight.
	mu sync.Mutex
	//gscope:guardedby mu
	closed bool
	//gscope:guardedby mu
	streams map[*stream]struct{}
	wg      sync.WaitGroup
}

// New builds a gateway over srv. Mount it with srv.ListenWeb(addr, g),
// or on any mux of the caller's — ServeHTTP is a plain handler.
func New(srv *netscope.Server, opts Options) *Gateway {
	if opts.MaxClients <= 0 {
		opts.MaxClients = DefaultMaxClients
	}
	if opts.QueueLimit <= 0 {
		opts.QueueLimit = DefaultQueueLimit
	}
	g := &Gateway{
		srv:     srv,
		web:     srv.Web(),
		opts:    opts,
		stop:    make(chan struct{}),
		streams: make(map[*stream]struct{}),
	}
	g.bufPool.New = func() any { b := make([]byte, 0, 4096); return &b }
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/stream", g.handleSSE)
	mux.HandleFunc("/v1/ws", g.handleWS)
	mux.HandleFunc("/v1/view", g.handleView)
	mux.HandleFunc("/v1/params", g.handleParams)
	mux.HandleFunc("/v1/params/", g.handleParams)
	mux.HandleFunc("/v1/sessions", g.handleSessions)
	mux.HandleFunc("/v1/sessions/", g.handleSessions)
	if !opts.NoDashboard {
		mux.HandleFunc("/", g.handleDashboard)
	}
	g.mux = mux
	return g
}

// ServeHTTP dispatches to the mounted endpoints.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// Close shuts the gateway down: refuses new streams, kills every
// in-flight one (closing its hub pipe, its event queue, and — for
// WebSocket — its hijacked connection), and waits for all stream
// goroutines to exit. Safe to call more than once. netscope.Server.Close
// calls it before tearing down the hub.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	live := make([]*stream, 0, len(g.streams))
	for st := range g.streams {
		live = append(live, st)
	}
	g.mu.Unlock()
	close(g.stop)
	for _, st := range live {
		st.shutdown()
	}
	g.wg.Wait()
	return nil
}

// addStream registers a stream client, enforcing the shutdown flag and
// the client cap, and reserves its WaitGroup slots (n goroutines).
func (g *Gateway) addStream(st *stream, goroutines int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return errShutdown
	}
	if len(g.streams) >= g.opts.MaxClients {
		return errTooManyClients
	}
	g.streams[st] = struct{}{}
	g.wg.Add(goroutines)
	return nil
}

// dropStream removes a finished stream from the registry.
func (g *Gateway) dropStream(st *stream) {
	g.mu.Lock()
	delete(g.streams, st)
	g.mu.Unlock()
}

// invoke runs fn on the server's loop goroutine and waits for it. It
// returns false — without waiting further — when the gateway shuts down
// first (a stopped loop never runs posted work); the caller must treat
// fn's results as unset in that case.
func (g *Gateway) invoke(fn func()) bool {
	done := make(chan struct{})
	g.srv.Loop().Invoke(func() {
		fn()
		close(done)
	})
	select {
	case <-done:
		return true
	case <-g.stop:
		return false
	}
}

// getBuf takes a recycled encode buffer (length 0).
func (g *Gateway) getBuf() []byte {
	return (*g.bufPool.Get().(*[]byte))[:0]
}

// putBuf recycles an encode buffer once its bytes are on the wire.
func (g *Gateway) putBuf(b []byte) {
	g.bufPool.Put(&b)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg}) //nolint:errcheck // best-effort error body
}

// writeJSON writes v as a JSON 200 response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is the only failure
}
