package webscope

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
)

// A hand-rolled RFC 6455 server: handshake, frame codec, masking,
// ping/pong and close codes — stdlib only, like everything else in the
// repo. Only the server side exists (browsers bring the client); only
// the pieces the gateway needs are implemented, but the frame decoder is
// strict about the pieces it does implement: reserved bits, unmasked
// client frames, oversized or fragmented control frames and overlong
// length encodings are protocol errors, and declared payload lengths are
// checked against the cap before any allocation so an adversarial header
// cannot balloon memory (FuzzWSFrameDecode holds that line).

// wsGUID is the key-digest suffix fixed by RFC 6455 §1.3.
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// WebSocket opcodes (RFC 6455 §5.2).
const (
	opContinuation = 0x0
	opText         = 0x1
	opBinary       = 0x2
	opClose        = 0x8
	opPing         = 0x9
	opPong         = 0xA
)

// Close codes (RFC 6455 §7.4.1).
const (
	closeNormal        = 1000
	closeGoingAway     = 1001
	closeProtocolError = 1002
	closeTooBig        = 1009
)

const (
	// maxWSControlPayload is the RFC's control-frame payload cap.
	maxWSControlPayload = 125
	// maxWSMessage bounds an assembled inbound message (the gateway's
	// client→server traffic is command lines; 64 KiB is generous).
	maxWSMessage = 64 << 10
)

var (
	errWSProtocol = errors.New("webscope: websocket protocol error")
	errWSTooBig   = errors.New("webscope: websocket message exceeds limit")
)

// wsAccept validates an upgrade request and hijacks the connection,
// completing the RFC 6455 handshake. On success the 101 response is
// already written and flushed; the caller owns conn.
func wsAccept(w http.ResponseWriter, r *http.Request) (net.Conn, *bufio.Reader, error) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "websocket handshake requires GET")
		return nil, nil, errWSProtocol
	}
	if !headerHasToken(r.Header, "Connection", "upgrade") ||
		!headerHasToken(r.Header, "Upgrade", "websocket") {
		httpError(w, http.StatusBadRequest, "not a websocket upgrade request")
		return nil, nil, errWSProtocol
	}
	if v := r.Header.Get("Sec-WebSocket-Version"); v != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		httpError(w, http.StatusUpgradeRequired, "unsupported websocket version")
		return nil, nil, errWSProtocol
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		httpError(w, http.StatusBadRequest, "missing Sec-WebSocket-Key")
		return nil, nil, errWSProtocol
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		httpError(w, http.StatusInternalServerError, "connection cannot be hijacked")
		return nil, nil, errWSProtocol
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		return nil, nil, err
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAcceptKey(key) + "\r\n\r\n"
	if _, err := brw.WriteString(resp); err != nil {
		conn.Close()
		return nil, nil, err
	}
	if err := brw.Flush(); err != nil {
		conn.Close()
		return nil, nil, err
	}
	return conn, brw.Reader, nil
}

// wsAcceptKey derives the Sec-WebSocket-Accept value (RFC 6455 §4.2.2).
func wsAcceptKey(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// headerHasToken reports whether any comma-separated token of the header
// equals token (ASCII case-insensitive) — "Connection: keep-alive,
// Upgrade" must match "upgrade".
func headerHasToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// wsFrame is one decoded frame.
type wsFrame struct {
	fin     bool
	opcode  byte
	payload []byte
}

// readWSFrame decodes one client frame. requireMask enforces the RFC's
// client-to-server masking rule (the fuzz target exercises both modes).
// The declared payload length is validated against maxPayload before any
// buffer is sized, so a hostile 2^63 length costs nothing.
func readWSFrame(br *bufio.Reader, maxPayload int64, requireMask bool) (wsFrame, error) {
	var f wsFrame
	b0, err := br.ReadByte()
	if err != nil {
		return f, err
	}
	b1, err := br.ReadByte()
	if err != nil {
		return f, eofIsUnexpected(err)
	}
	f.fin = b0&0x80 != 0
	f.opcode = b0 & 0x0F
	if b0&0x70 != 0 {
		return f, fmt.Errorf("%w: reserved bits set", errWSProtocol)
	}
	switch f.opcode {
	case opContinuation, opText, opBinary, opClose, opPing, opPong:
	default:
		return f, fmt.Errorf("%w: unknown opcode %#x", errWSProtocol, f.opcode)
	}
	masked := b1&0x80 != 0
	if requireMask && !masked {
		return f, fmt.Errorf("%w: unmasked client frame", errWSProtocol)
	}
	length := int64(b1 & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(br, ext[:]); err != nil {
			return f, eofIsUnexpected(err)
		}
		length = int64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(br, ext[:]); err != nil {
			return f, eofIsUnexpected(err)
		}
		u := binary.BigEndian.Uint64(ext[:])
		if u > 1<<62 {
			return f, fmt.Errorf("%w: 64-bit length with high bit set", errWSProtocol)
		}
		length = int64(u)
	}
	if f.opcode >= opClose {
		if !f.fin {
			return f, fmt.Errorf("%w: fragmented control frame", errWSProtocol)
		}
		if length > maxWSControlPayload {
			return f, fmt.Errorf("%w: control frame payload %d > 125", errWSProtocol, length)
		}
	}
	if length > maxPayload {
		return f, errWSTooBig
	}
	var mask [4]byte
	if masked {
		if _, err := io.ReadFull(br, mask[:]); err != nil {
			return f, eofIsUnexpected(err)
		}
	}
	f.payload = make([]byte, length)
	if _, err := io.ReadFull(br, f.payload); err != nil {
		return f, eofIsUnexpected(err)
	}
	if masked {
		maskBytes(f.payload, mask)
	}
	return f, nil
}

// maskBytes applies the RFC 6455 §5.3 masking transform in place (its
// own inverse).
func maskBytes(p []byte, mask [4]byte) {
	for i := range p {
		p[i] ^= mask[i&3]
	}
}

// readWSMessage assembles the next data message, dispatching interleaved
// control frames to ctrl (payload valid only during the call). It
// returns the data opcode (opText or opBinary) and the assembled
// payload. A ctrl error, a protocol violation, a message past
// maxWSMessage, or an I/O error ends the message (and the connection).
func readWSMessage(br *bufio.Reader, requireMask bool, ctrl func(op byte, payload []byte) error) (byte, []byte, error) {
	var (
		op      byte
		data    []byte
		started bool
	)
	for {
		f, err := readWSFrame(br, maxWSMessage, requireMask)
		if err != nil {
			return 0, nil, err
		}
		switch f.opcode {
		case opClose, opPing, opPong:
			if err := ctrl(f.opcode, f.payload); err != nil {
				return 0, nil, err
			}
			continue
		case opText, opBinary:
			if started {
				return 0, nil, fmt.Errorf("%w: data frame inside fragmented message", errWSProtocol)
			}
			op, data, started = f.opcode, f.payload, true
		case opContinuation:
			if !started {
				return 0, nil, fmt.Errorf("%w: continuation without a message", errWSProtocol)
			}
			if int64(len(data))+int64(len(f.payload)) > maxWSMessage {
				return 0, nil, errWSTooBig
			}
			data = append(data, f.payload...)
		}
		if f.fin {
			return op, data, nil
		}
	}
}

// eofIsUnexpected upgrades io.EOF mid-frame to ErrUnexpectedEOF so a
// truncated frame is distinguishable from a clean close between frames.
func eofIsUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// appendWSHeader appends a server-to-client frame header (fin, unmasked)
// for a payload of n bytes. The stream encode path calls it per event.
//
//gscope:hotpath
func appendWSHeader(dst []byte, op byte, n int) []byte {
	dst = append(dst, 0x80|op)
	switch {
	case n <= 125:
		dst = append(dst, byte(n))
	case n <= 0xFFFF:
		dst = append(dst, 126, byte(n>>8), byte(n))
	default:
		dst = append(dst, 127,
			byte(uint64(n)>>56), byte(uint64(n)>>48), byte(uint64(n)>>40), byte(uint64(n)>>32),
			byte(uint64(n)>>24), byte(uint64(n)>>16), byte(uint64(n)>>8), byte(uint64(n)))
	}
	return dst
}

// appendWSFrame appends a complete server frame: header plus payload.
//
//gscope:hotpath
func appendWSFrame(dst []byte, op byte, payload []byte) []byte {
	dst = appendWSHeader(dst, op, len(payload))
	return append(dst, payload...)
}

// appendWSClose appends a close frame carrying code and an optional
// short reason.
func appendWSClose(dst []byte, code int, reason string) []byte {
	if len(reason) > maxWSControlPayload-2 {
		reason = reason[:maxWSControlPayload-2]
	}
	dst = appendWSHeader(dst, opClose, 2+len(reason))
	dst = append(dst, byte(code>>8), byte(code))
	return append(dst, reason...)
}
