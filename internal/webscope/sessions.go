package webscope

import (
	"net/http"
	"path"
	"strconv"
	"strings"
	"time"

	"repro/internal/reclog"
	"repro/internal/tuple"
)

// /v1/sessions: the flight recorder's on-disk sessions over HTTP.
// The listing covers the server's active recording directory (gscoped
// -record); querying replays a time window through reclog's indexed
// reader (segments wholly outside the window are never read) and
// returns the tuples as JSON triples. Reads are plain file I/O on the
// handler goroutine — reclog sessions are safe to read while the
// recorder appends (crash-tolerant scanning), so no loop marshaling.

// maxSessionTuples bounds one query response; the newest tuples win,
// like the hub's own flight-log backfill bound.
const maxSessionTuples = 100000

type segmentJSON struct {
	Seq     int64 `json:"seq"`
	FirstMS int64 `json:"firstMS"`
	LastMS  int64 `json:"lastMS"`
	Bytes   int64 `json:"bytes"`
	Tuples  int64 `json:"tuples"`
}

type sessionJSON struct {
	ID       int           `json:"id"`
	Dir      string        `json:"dir"`
	Tuples   int64         `json:"tuples"`
	FirstMS  *int64        `json:"firstMS"`
	LastMS   *int64        `json:"lastMS"`
	Segments []segmentJSON `json:"segments"`
}

// handleSessions serves:
//
//	GET /v1/sessions                          → {"sessions":[{...}]}
//	GET /v1/sessions/ID?from=&to=&signals=&limit= → {"tuples":[[t,v,"name"],...]}
//
// from/to are recorded-timeline milliseconds (to absent = unbounded);
// signals filters by the same exact/glob patterns streams use; limit
// caps returned tuples (newest win; default and max 100000).
func (g *Gateway) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "sessions requires GET")
		return
	}
	dir := g.srv.FlightDir()
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sessions")
	rest = strings.TrimPrefix(rest, "/")
	if rest == "" {
		g.listSessions(w, dir)
		return
	}
	id, err := strconv.Atoi(rest)
	if err != nil || id != 0 {
		httpError(w, http.StatusNotFound, "unknown session "+rest)
		return
	}
	if dir == "" {
		httpError(w, http.StatusNotFound, "the hub is not recording (gscoped -record)")
		return
	}
	g.querySession(w, r, dir)
}

func (g *Gateway) listSessions(w http.ResponseWriter, dir string) {
	sessions := []sessionJSON{}
	if dir != "" {
		if sess, err := reclog.OpenSession(dir); err == nil {
			sj := sessionJSON{ID: 0, Dir: dir, Tuples: sess.Tuples(), Segments: []segmentJSON{}}
			if first, last, ok := sess.Bounds(); ok {
				sj.FirstMS, sj.LastMS = &first, &last
			}
			for _, seg := range sess.Segments() {
				sj.Segments = append(sj.Segments, segmentJSON{
					Seq: seg.Seq, FirstMS: seg.First, LastMS: seg.Last,
					Bytes: seg.Bytes, Tuples: seg.Tuples,
				})
			}
			sessions = append(sessions, sj)
		}
	}
	writeJSON(w, map[string]any{"sessions": sessions})
}

func (g *Gateway) querySession(w http.ResponseWriter, r *http.Request, dir string) {
	q := r.URL.Query()
	var from, to time.Duration
	if s := q.Get("from"); s != "" {
		d, err := parseSinceMS(s)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		from = d
	}
	if s := q.Get("to"); s != "" {
		d, err := parseSinceMS(s)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		to = d
	}
	limit := maxSessionTuples
	if s := q.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "bad limit: "+s)
			return
		}
		limit = min(n, maxSessionTuples)
	}
	var patterns []string
	for _, v := range q["signals"] {
		for _, p := range strings.Split(v, ",") {
			if p != "" {
				patterns = append(patterns, p)
			}
		}
	}
	for _, p := range patterns {
		if _, err := path.Match(p, "probe"); err != nil {
			httpError(w, http.StatusBadRequest, "bad signal pattern: "+p)
			return
		}
	}

	sess, err := reclog.OpenSession(dir)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	rep := reclog.NewReplayer(sess)
	rep.SetSpeed(0)
	if from != 0 || to != 0 {
		rep.SetWindow(from, to)
	}
	var out []tuple.Tuple
	truncated := false
	rep.Run(func(batch []tuple.Tuple) error { //nolint:errcheck // best-effort read of a live session
		for _, t := range batch {
			if !matchSignal(patterns, t.Name) {
				continue
			}
			if len(out) >= limit {
				out = out[1:]
				truncated = true
			}
			out = append(out, t)
		}
		return nil
	})

	w.Header().Set("Content-Type", "application/json")
	buf := make([]byte, 0, 64+32*len(out))
	buf = append(buf, `{"dir":`...)
	buf = tuple.AppendJSONString(buf, dir)
	buf = append(buf, `,"truncated":`...)
	buf = strconv.AppendBool(buf, truncated)
	buf = append(buf, `,"tuples":`...)
	buf = tuple.AppendJSONBatch(buf, out)
	buf = append(buf, '}', '\n')
	w.Write(buf) //nolint:errcheck // client gone is the only failure
}

// matchSignal applies the stream lanes' filter semantics: no patterns
// means everything; otherwise exact match or path.Match glob.
func matchSignal(patterns []string, name string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, p := range patterns {
		if p == name {
			return true
		}
		if ok, err := path.Match(p, name); err == nil && ok {
			return true
		}
	}
	return false
}
