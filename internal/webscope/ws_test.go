package webscope

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/internal/tuple"
)

// wsConn is a minimal RFC 6455 client for the tests: it speaks exactly
// the client side the gateway's server implementation expects (masked
// frames, handshake key check).
type wsConn struct {
	c  net.Conn
	br *bufio.Reader
}

func dialWS(t *testing.T, host, path string) *wsConn {
	t.Helper()
	c, err := net.Dial("tcp", host)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.SetDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck

	key := base64.StdEncoding.EncodeToString([]byte("0123456789abcdef"))
	fmt.Fprintf(c, "GET %s HTTP/1.1\r\nHost: %s\r\n"+
		"Upgrade: websocket\r\nConnection: keep-alive, Upgrade\r\n"+
		"Sec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n\r\n", path, host, key)

	br := bufio.NewReader(c)
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "101") {
		t.Fatalf("handshake status = %q", strings.TrimSpace(status))
	}
	accept := ""
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if v, ok := strings.CutPrefix(line, "Sec-WebSocket-Accept: "); ok {
			accept = v
		}
	}
	if accept != wsAcceptKey(key) {
		t.Fatalf("Sec-WebSocket-Accept = %q, want %q", accept, wsAcceptKey(key))
	}
	return &wsConn{c: c, br: br}
}

// writeFrame sends one masked client frame.
func (w *wsConn) writeFrame(t *testing.T, op byte, payload []byte) {
	t.Helper()
	mask := [4]byte{0x12, 0x34, 0x56, 0x78}
	frame := []byte{0x80 | op}
	n := len(payload)
	switch {
	case n <= 125:
		frame = append(frame, 0x80|byte(n))
	case n <= 0xFFFF:
		frame = append(frame, 0x80|126, byte(n>>8), byte(n))
	default:
		t.Fatalf("test frame too large: %d", n)
	}
	frame = append(frame, mask[:]...)
	masked := append([]byte(nil), payload...)
	maskBytes(masked, mask)
	frame = append(frame, masked...)
	if _, err := w.c.Write(frame); err != nil {
		t.Fatal(err)
	}
}

// readFrame reads one (unmasked) server frame.
func (w *wsConn) readFrame(t *testing.T) wsFrame {
	t.Helper()
	f, err := readWSFrame(w.br, maxWSMessage, false)
	if err != nil {
		t.Fatalf("readWSFrame: %v", err)
	}
	return f
}

// readEvent reads text frames until one parses as {"event":E,"data":D};
// non-text frames fail the test.
func (w *wsConn) readEvent(t *testing.T) (string, json.RawMessage) {
	t.Helper()
	f := w.readFrame(t)
	if f.opcode != opText {
		t.Fatalf("expected a text event frame, got opcode %#x", f.opcode)
	}
	var ev struct {
		Event string          `json:"event"`
		Data  json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal(f.payload, &ev); err != nil {
		t.Fatalf("event frame %q: %v", f.payload, err)
	}
	return ev.Event, ev.Data
}

// expectEvent skips events until name arrives and returns its data.
func (w *wsConn) expectEvent(t *testing.T, name string) json.RawMessage {
	t.Helper()
	for i := 0; i < 64; i++ {
		ev, data := w.readEvent(t)
		if ev == name {
			return data
		}
	}
	t.Fatalf("no %q event in 64 events", name)
	panic("unreachable")
}

// TestWSEndToEnd covers the JSON WebSocket lane: handshake, backfill,
// live deltas, the inbound command plane, ping/pong and close.
func TestWSEndToEnd(t *testing.T) {
	r := newRig(t, Options{}, nil)
	r.inject(
		tuple.Tuple{Time: 1000, Value: 1, Name: "sig.a"},
		tuple.Tuple{Time: 2000, Value: 2, Name: "sig.a"},
	)

	ws := dialWS(t, r.host, "/v1/ws?signals=sig.a&since=-60000")
	hello := ws.expectEvent(t, "hello")
	var h struct {
		Proto  int    `json:"proto"`
		Format string `json:"format"`
	}
	if err := json.Unmarshal(hello, &h); err != nil {
		t.Fatal(err)
	}
	if h.Proto != 2 || h.Format != "json" {
		t.Fatalf("hello = %+v", h)
	}

	// Backfill arrives as batch events.
	batch := ws.expectEvent(t, "batch")
	tuples := decodeBatch(t, string(batch))
	if len(tuples) != 2 || tuples[0].Name != "sig.a" {
		t.Fatalf("backfill = %v", tuples)
	}

	// Live delta.
	r.inject(tuple.Tuple{Time: 3000, Value: 3, Name: "sig.a"})
	live := decodeBatch(t, string(ws.expectEvent(t, "batch")))
	if len(live) != 1 || live[0].Value != 3 {
		t.Fatalf("live = %v", live)
	}

	// Inbound command plane: a v2 command line as a text message; the
	// reply rides back as a param event ("param-ok" surfaces as param).
	ws.writeFrame(t, opText, []byte("param set delay-ms 80"))
	var pd struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal(ws.expectEvent(t, "param"), &pd); err != nil {
		t.Fatal(err)
	}
	if pd.Name != "delay-ms" || pd.Value != 80 {
		t.Fatalf("param reply = %+v", pd)
	}
	if r.delay.Load() != 80 {
		t.Fatalf("delay var = %v, want 80", r.delay.Load())
	}

	// An unknown command comes back as an error event, not a dead conn.
	ws.writeFrame(t, opText, []byte("make me a sandwich"))
	errEv := ws.expectEvent(t, "error")
	if !bytes.Contains(errEv, []byte("unknown command")) {
		t.Fatalf("error event = %s", errEv)
	}

	// Ping → pong with the same payload, even under traffic.
	ws.writeFrame(t, opPing, []byte("keepalive"))
	for i := 0; ; i++ {
		f := ws.readFrame(t)
		if f.opcode == opPong {
			if string(f.payload) != "keepalive" {
				t.Fatalf("pong payload = %q", f.payload)
			}
			break
		}
		if f.opcode != opText || i > 64 {
			t.Fatalf("no pong (last opcode %#x)", f.opcode)
		}
	}

	// Close handshake: the server echoes our code and tears down.
	ws.writeFrame(t, opClose, []byte{closeGoingAway >> 8, closeGoingAway & 0xFF})
	for i := 0; ; i++ {
		f := ws.readFrame(t)
		if f.opcode == opClose {
			if len(f.payload) < 2 {
				t.Fatalf("close payload = %v", f.payload)
			}
			code := int(f.payload[0])<<8 | int(f.payload[1])
			if code != closeGoingAway {
				t.Fatalf("close code = %d, want %d", code, closeGoingAway)
			}
			break
		}
		if i > 64 {
			t.Fatal("no close frame")
		}
	}
	testutil.WaitUntil(t, "ws client to release", 10*time.Second, func() bool {
		return r.srv.Web().Clients() == 0
	})
}

// TestWSBinaryLane: format=binary relays the hub's v3 byte stream
// verbatim; a StreamDecoder over the concatenated binary messages
// recovers the tuples.
func TestWSBinaryLane(t *testing.T) {
	r := newRig(t, Options{}, nil)
	r.inject(
		tuple.Tuple{Time: 1000, Value: 1.5, Name: "cps"},
		tuple.Tuple{Time: 2000, Value: 2.5, Name: "cps"},
	)

	ws := dialWS(t, r.host, "/v1/ws?signals=cps&since=-60000&format=binary")
	var h struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(ws.expectEvent(t, "hello"), &h); err != nil {
		t.Fatal(err)
	}
	if h.Format != "binary" {
		t.Fatalf("hello format = %q", h.Format)
	}

	r.inject(tuple.Tuple{Time: 3000, Value: 3.5, Name: "cps"})

	dec := tuple.NewStreamDecoder()
	var got []tuple.Tuple
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("binary lane delivered %v", got)
		}
		f := ws.readFrame(t)
		if f.opcode != opBinary {
			continue
		}
		err := dec.Feed(f.payload,
			func(string) {},
			func(b []tuple.Tuple) { got = append(got, b...) })
		if err != nil {
			t.Fatalf("v3 decode: %v", err)
		}
	}
	for i, want := range []float64{1.5, 2.5, 3.5} {
		if got[i].Value != want || got[i].Name != "cps" {
			t.Fatalf("binary tuples = %v", got)
		}
	}
}

// TestWSRejectsBadHandshakes: handshake validation failures answer with
// plain HTTP errors and never leave a stream client behind.
func TestWSRejectsBadHandshakes(t *testing.T) {
	r := newRig(t, Options{}, nil)

	// A plain GET (no upgrade headers) is a 400.
	resp, body := r.get("/v1/ws")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("plain GET /v1/ws = %d %s, want 400", resp.StatusCode, body)
	}

	// A wrong version is 426 with the supported version advertised.
	req, _ := http.NewRequest(http.MethodGet, r.base+"/v1/ws", nil)
	req.Header.Set("Connection", "Upgrade")
	req.Header.Set("Upgrade", "websocket")
	req.Header.Set("Sec-WebSocket-Version", "8")
	req.Header.Set("Sec-WebSocket-Key", "x")
	resp, err := r.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusUpgradeRequired {
		t.Fatalf("v8 handshake = %d, want 426", resp.StatusCode)
	}
	if v := resp.Header.Get("Sec-WebSocket-Version"); v != "13" {
		t.Fatalf("advertised version = %q", v)
	}

	// Bad query parameters beat the handshake.
	resp, _ = r.get("/v1/ws?max-rate=-2")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query = %d, want 400", resp.StatusCode)
	}

	if got := r.srv.Web().Clients(); got != 0 {
		t.Fatalf("rejected handshakes leaked %d clients", got)
	}
}

// TestWSProtocolViolationGetsClose: an unmasked client frame draws a
// 1002 close frame before the connection drops.
func TestWSProtocolViolationGetsClose(t *testing.T) {
	r := newRig(t, Options{}, nil)
	ws := dialWS(t, r.host, "/v1/ws?stream=0")
	ws.expectEvent(t, "hello")

	// Unmasked text frame: a protocol error for a client.
	if _, err := ws.c.Write([]byte{0x81, 0x02, 'h', 'i'}); err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		f, err := readWSFrame(ws.br, maxWSMessage, false)
		if err != nil {
			t.Fatalf("expected a close frame, got %v", err)
		}
		if f.opcode == opClose {
			code := int(f.payload[0])<<8 | int(f.payload[1])
			if code != closeProtocolError {
				t.Fatalf("close code = %d, want %d", code, closeProtocolError)
			}
			break
		}
		if i > 64 {
			t.Fatal("no close frame")
		}
	}
	testutil.WaitUntil(t, "violating client to release", 10*time.Second, func() bool {
		return r.srv.Web().Clients() == 0
	})
}

// --- Frame codec units -------------------------------------------------------

// clientFrame builds one masked client frame for decoder tests.
func clientFrame(fin bool, op byte, payload []byte) []byte {
	b0 := op
	if fin {
		b0 |= 0x80
	}
	frame := []byte{b0}
	mask := [4]byte{1, 2, 3, 4}
	n := len(payload)
	switch {
	case n <= 125:
		frame = append(frame, 0x80|byte(n))
	case n <= 0xFFFF:
		frame = append(frame, 0x80|126, byte(n>>8), byte(n))
	default:
		frame = append(frame, 0x80|127, 0, 0, 0, 0,
			byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	}
	frame = append(frame, mask[:]...)
	masked := append([]byte(nil), payload...)
	maskBytes(masked, mask)
	return append(frame, masked...)
}

func TestReadWSFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte(""),
		[]byte("short"),
		bytes.Repeat([]byte("x"), 126),   // 16-bit length
		bytes.Repeat([]byte("y"), 70000), // 64-bit length
	}
	for _, p := range payloads {
		br := bufio.NewReader(bytes.NewReader(clientFrame(true, opText, p)))
		f, err := readWSFrame(br, 1<<20, true)
		if err != nil {
			t.Fatalf("len %d: %v", len(p), err)
		}
		if !f.fin || f.opcode != opText || !bytes.Equal(f.payload, p) {
			t.Fatalf("len %d: frame = %+v", len(p), f)
		}
	}
}

func TestReadWSFrameServerFrames(t *testing.T) {
	// The server-side encoder and the decoder agree (requireMask=false).
	for _, p := range [][]byte{[]byte("ev"), bytes.Repeat([]byte("z"), 300)} {
		buf := appendWSFrame(nil, opBinary, p)
		f, err := readWSFrame(bufio.NewReader(bytes.NewReader(buf)), 1<<20, false)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f.payload, p) {
			t.Fatalf("round trip lost payload (%d bytes)", len(p))
		}
	}
	// appendWSClose carries the code big-endian.
	buf := appendWSClose(nil, closeTooBig, "too big")
	f, err := readWSFrame(bufio.NewReader(bytes.NewReader(buf)), 1<<20, false)
	if err != nil {
		t.Fatal(err)
	}
	if f.opcode != opClose || int(f.payload[0])<<8|int(f.payload[1]) != closeTooBig {
		t.Fatalf("close frame = %+v", f)
	}
	if string(f.payload[2:]) != "too big" {
		t.Fatalf("close reason = %q", f.payload[2:])
	}
}

func TestReadWSFrameRejects(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
	}{
		{"reserved bits", []byte{0xC1, 0x80, 1, 2, 3, 4}},
		{"unknown opcode", []byte{0x83, 0x80, 1, 2, 3, 4}},
		{"unmasked client frame", []byte{0x81, 0x02, 'h', 'i'}},
		{"fragmented control", append([]byte{0x09, 0x80}, 1, 2, 3, 4)},
		{"oversized control", []byte{0x89, 0x80 | 126, 0x01, 0x00, 1, 2, 3, 4}},
		{"64-bit length high bit", []byte{0x81, 0x80 | 127,
			0x80, 0, 0, 0, 0, 0, 0, 1, 1, 2, 3, 4}},
		{"truncated header", []byte{0x81}},
		{"truncated payload", []byte{0x81, 0x85, 1, 2, 3, 4, 'h'}},
	}
	for _, tc := range cases {
		br := bufio.NewReader(bytes.NewReader(tc.raw))
		if _, err := readWSFrame(br, 1<<20, true); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// A declared length over the cap is rejected before allocation.
	huge := []byte{0x81, 0x80 | 127, 0x3F, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4}
	if _, err := readWSFrame(bufio.NewReader(bytes.NewReader(huge)), 1<<20, true); err != errWSTooBig {
		t.Fatalf("huge frame: err = %v, want errWSTooBig", err)
	}
}

func TestReadWSMessageFragmentation(t *testing.T) {
	// text("hel") + ping + continuation("lo") assembles to "hello" with
	// the ping dispatched mid-message.
	var raw []byte
	raw = append(raw, clientFrame(false, opText, []byte("hel"))...)
	raw = append(raw, clientFrame(true, opPing, []byte("p"))...)
	raw = append(raw, clientFrame(true, opContinuation, []byte("lo"))...)

	var pings int
	op, data, err := readWSMessage(bufio.NewReader(bytes.NewReader(raw)), true,
		func(op byte, p []byte) error {
			if op == opPing {
				pings++
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if op != opText || string(data) != "hello" || pings != 1 {
		t.Fatalf("op=%#x data=%q pings=%d", op, data, pings)
	}

	// A new data frame inside a fragmented message is a protocol error.
	raw = append(clientFrame(false, opText, []byte("a")), clientFrame(true, opText, []byte("b"))...)
	if _, _, err := readWSMessage(bufio.NewReader(bytes.NewReader(raw)), true, nil); err == nil {
		t.Fatal("interleaved data frame accepted")
	}
	// A continuation with no message in progress is a protocol error.
	raw = clientFrame(true, opContinuation, []byte("x"))
	if _, _, err := readWSMessage(bufio.NewReader(bytes.NewReader(raw)), true, nil); err == nil {
		t.Fatal("orphan continuation accepted")
	}
}

func TestAppendWSHeaderLengths(t *testing.T) {
	for _, n := range []int{0, 1, 125, 126, 0xFFFF, 0x10000, 70000} {
		hdr := appendWSHeader(nil, opBinary, n)
		br := bufio.NewReader(io.MultiReader(bytes.NewReader(hdr),
			bytes.NewReader(make([]byte, n))))
		f, err := readWSFrame(br, 1<<20, false)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(f.payload) != n {
			t.Fatalf("n=%d decoded as %d", n, len(f.payload))
		}
	}
}

// FuzzWSFrameDecode: adversarial client frames never panic, never
// over-read past the declared cap, and mid-frame truncation is reported
// as an error rather than a silent short payload.
func FuzzWSFrameDecode(f *testing.F) {
	f.Add(clientFrame(true, opText, []byte("hello")), true)
	f.Add(clientFrame(true, opPing, []byte("p")), true)
	f.Add(clientFrame(true, opClose, []byte{0x03, 0xE8}), true)
	f.Add(clientFrame(true, opBinary, bytes.Repeat([]byte("b"), 200)), true)
	f.Add(append(clientFrame(false, opText, []byte("fr")),
		clientFrame(true, opContinuation, []byte("ag"))...), true)
	f.Add(appendWSFrame(nil, opText, []byte("unmasked server frame")), false)
	f.Add([]byte{0x81, 0x80 | 127, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, true)
	f.Add([]byte{0xC1, 0x00}, true)

	f.Fuzz(func(t *testing.T, data []byte, requireMask bool) {
		const cap = 1 << 16
		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 16; i++ {
			fr, err := readWSFrame(br, cap, requireMask)
			if err != nil {
				break
			}
			if len(fr.payload) > cap {
				t.Fatalf("payload %d exceeds cap %d", len(fr.payload), cap)
			}
			if fr.opcode >= opClose && len(fr.payload) > maxWSControlPayload {
				t.Fatalf("oversized control payload %d accepted", len(fr.payload))
			}
		}
		// The message assembler holds the same line, including across
		// fragmentation and interleaved control frames.
		br = bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 4; i++ {
			_, msg, err := readWSMessage(br, requireMask, func(byte, []byte) error { return nil })
			if err != nil {
				break
			}
			if len(msg) > maxWSMessage {
				t.Fatalf("assembled message %d exceeds cap %d", len(msg), maxWSMessage)
			}
		}
	})
}
