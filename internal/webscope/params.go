package webscope

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
)

// /v1/params: REST over the hub's core.ParamSet — the same registry the
// v2 "param list/get/set" commands and the GTK sliders manipulate.
// ParamSet is thread-safe, so these handlers need no loop marshaling;
// a successful PUT fans out through the registry's observers, which the
// hub turns into `param` notification frames on every stream lane (TCP
// subscribers and web streams alike).

// paramJSON is the wire shape of one parameter.
type paramJSON struct {
	Name     string  `json:"name"`
	Value    float64 `json:"value"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
	Step     float64 `json:"step"`
	ReadOnly bool    `json:"readOnly"`
}

func paramToJSON(p core.ParamInfo) paramJSON {
	return paramJSON{Name: p.Name, Value: p.Value, Min: p.Min, Max: p.Max, Step: p.Step, ReadOnly: p.ReadOnly}
}

// handleParams serves:
//
//	GET /v1/params        → {"params":[{...},...]}
//	GET /v1/params/NAME   → {...}
//	PUT /v1/params/NAME   → set; body {"value":X} or ?value=X; replies
//	                        with the stored (clamped/quantized) state
func (g *Gateway) handleParams(w http.ResponseWriter, r *http.Request) {
	ps := g.srv.Params()
	if ps == nil {
		httpError(w, http.StatusNotFound, "the hub has no parameter registry (Server.SetParams)")
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/v1/params")
	name = strings.TrimPrefix(name, "/")
	switch {
	case r.Method == http.MethodGet && name == "":
		infos := ps.Infos()
		out := make([]paramJSON, len(infos))
		for i, p := range infos {
			out[i] = paramToJSON(p)
		}
		writeJSON(w, map[string]any{"params": out})
	case r.Method == http.MethodGet:
		info, err := ps.Info(name)
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, paramToJSON(info))
	case r.Method == http.MethodPut && name != "":
		v, err := paramValueArg(r)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			httpError(w, http.StatusBadRequest, "value must be finite")
			return
		}
		if err := ps.Set(name, v); err != nil {
			code := http.StatusNotFound
			if strings.Contains(err.Error(), "read-only") {
				code = http.StatusForbidden
			}
			httpError(w, code, err.Error())
			return
		}
		info, err := ps.Info(name)
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, paramToJSON(info))
	default:
		httpError(w, http.StatusMethodNotAllowed, "params supports GET and PUT")
	}
}

// paramValueArg extracts the value to set: a JSON body {"value":X} (or a
// bare JSON number), with ?value=X as the query fallback.
func paramValueArg(r *http.Request) (float64, error) {
	if s := r.URL.Query().Get("value"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, errors.New("bad value: " + s)
		}
		return v, nil
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 4096))
	if err != nil {
		return 0, err
	}
	text := strings.TrimSpace(string(body))
	if text == "" {
		return 0, errors.New("missing value: send {\"value\":X} or ?value=X")
	}
	var obj struct {
		Value *float64 `json:"value"`
	}
	if err := json.Unmarshal(body, &obj); err == nil && obj.Value != nil {
		return *obj.Value, nil
	}
	var v float64
	if err := json.Unmarshal(body, &v); err == nil {
		return v, nil
	}
	return 0, errors.New("body must be {\"value\":X} or a JSON number")
}
