package webscope

import (
	"net/http"
	"strconv"
	"strings"

	"repro/internal/draw"
	"repro/internal/geom"
	"repro/internal/netscope"
	"repro/internal/tuple"
)

// /v1/view: historical min/max/last envelopes from the hub's tiered
// per-signal store (core.TimedHistory), O(cols) per signal — the same
// read path Since+Cols subscriptions use, exposed as a query API so a
// dashboard can fetch any zoom window without holding a stream open.
// format=png renders the envelope server-side through internal/draw.

const (
	defaultViewCols = 512
	maxViewCols     = 4096
	defaultPNGW     = 800
	defaultPNGH     = 300
	maxPNGW         = 2048
	maxPNGH         = 1024
)

// handleView serves GET /v1/view?signals=&from=&to=&cols=&format=.
// from (alias: since) and to are stream-timeline milliseconds; negative
// values are trailing offsets from the newest stream timestamp, from
// defaults to -60000. Requires the hub's backfill store
// (Server.SetBackfillRetention); 409 otherwise.
func (g *Gateway) handleView(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "view requires GET")
		return
	}
	q := r.URL.Query()
	var patterns []string
	for _, v := range q["signals"] {
		for _, p := range strings.Split(v, ",") {
			if p != "" {
				patterns = append(patterns, p)
			}
		}
	}
	fromMS := int64(-60000)
	fromArg := q.Get("from")
	if fromArg == "" {
		fromArg = q.Get("since")
	}
	if fromArg != "" {
		d, err := parseSinceMS(fromArg)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		fromMS = d.Milliseconds()
	}
	cols := defaultViewCols
	if s := q.Get("cols"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "bad cols: "+s)
			return
		}
		cols = min(n, maxViewCols)
	}

	var (
		views   []netscope.SignalView
		verr    error
		newest  int64
		seen    bool
		enabled bool
	)
	ok := g.invoke(func() {
		enabled = g.srv.BackfillEnabled()
		if !enabled {
			return
		}
		newest, seen = g.srv.StreamNewest()
		views, verr = g.srv.WebView(patterns, fromMS, cols)
	})
	if !ok {
		httpError(w, http.StatusServiceUnavailable, errShutdown.Error())
		return
	}
	if !enabled {
		httpError(w, http.StatusConflict, "history disabled: the hub runs without SetBackfillRetention")
		return
	}
	if verr != nil {
		httpError(w, http.StatusBadRequest, verr.Error())
		return
	}

	// An explicit upper bound trims the envelope after the O(cols) read.
	if s := q.Get("to"); s != "" {
		d, err := parseSinceMS(s)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		toMS := d.Milliseconds()
		if toMS < 0 {
			toMS += newest
		}
		for i := range views {
			b := views[i].Buckets
			for len(b) > 0 && b[len(b)-1].Time > toMS {
				b = b[:len(b)-1]
			}
			views[i].Buckets = b
		}
	}

	switch q.Get("format") {
	case "", "json":
		writeViewJSON(w, views, fromMS, newest, seen, cols)
	case "png":
		writeViewPNG(w, r, views)
	default:
		httpError(w, http.StatusBadRequest, "format must be json or png")
	}
}

// writeViewJSON renders {"newestMS":..,"fromMS":..,"cols":..,"signals":
// [{"name":N,"buckets":[[timeMS,min,max,last,count],...]},...]}.
func writeViewJSON(w http.ResponseWriter, views []netscope.SignalView, fromMS, newest int64, seen bool, cols int) {
	w.Header().Set("Content-Type", "application/json")
	buf := make([]byte, 0, 4096)
	buf = append(buf, `{"newestMS":`...)
	if seen {
		buf = strconv.AppendInt(buf, newest, 10)
	} else {
		buf = append(buf, "null"...)
	}
	buf = append(buf, `,"fromMS":`...)
	buf = strconv.AppendInt(buf, fromMS, 10)
	buf = append(buf, `,"cols":`...)
	buf = strconv.AppendInt(buf, int64(cols), 10)
	buf = append(buf, `,"signals":[`...)
	for i, v := range views {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"name":`...)
		buf = tuple.AppendJSONString(buf, v.Name)
		buf = append(buf, `,"buckets":[`...)
		for j, bk := range v.Buckets {
			if j > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, '[')
			buf = strconv.AppendInt(buf, bk.Time, 10)
			buf = append(buf, ',')
			buf = tuple.AppendJSONValue(buf, bk.Min)
			buf = append(buf, ',')
			buf = tuple.AppendJSONValue(buf, bk.Max)
			buf = append(buf, ',')
			buf = tuple.AppendJSONValue(buf, bk.Last)
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, bk.Count, 10)
			buf = append(buf, ']')
		}
		buf = append(buf, `]}`...)
	}
	buf = append(buf, `]}`...)
	buf = append(buf, '\n')
	w.Write(buf) //nolint:errcheck // client gone is the only failure
}

// writeViewPNG renders the envelope chart: per signal a translucent
// min..max band and a bright last-value polyline, on the scope's
// dark-green canvas with a dotted grid.
func writeViewPNG(w http.ResponseWriter, r *http.Request, views []netscope.SignalView) {
	q := r.URL.Query()
	width := pngDim(q.Get("w"), defaultPNGW, maxPNGW)
	height := pngDim(q.Get("h"), defaultPNGH, maxPNGH)
	s := renderViews(views, width, height)
	w.Header().Set("Content-Type", "image/png")
	s.EncodePNG(w) //nolint:errcheck // client gone is the only failure
}

func pngDim(s string, def, max int) int {
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 16 {
		return def
	}
	if n > max {
		return max
	}
	return n
}

// renderViews rasterizes the envelope set onto one surface. Time spans
// the union of all buckets; values span the union of all min/max with 5%
// headroom.
func renderViews(views []netscope.SignalView, width, height int) *draw.Surface {
	s := draw.NewSurface(width, height)
	s.Fill(draw.ScopeBG)
	for i := 1; i < 8; i++ {
		s.DottedHLine(0, width-1, i*height/8, 3, draw.GridGreen)
		s.DottedVLine(i*width/8, 0, height-1, 3, draw.GridGreen)
	}
	tmin, tmax := int64(0), int64(0)
	vmin, vmax := 0.0, 0.0
	first := true
	for _, v := range views {
		for _, bk := range v.Buckets {
			if first {
				tmin, tmax, vmin, vmax = bk.Time, bk.Time, bk.Min, bk.Max
				first = false
				continue
			}
			tmin = min(tmin, bk.Time)
			tmax = max(tmax, bk.Time)
			vmin = min(vmin, bk.Min)
			vmax = max(vmax, bk.Max)
		}
	}
	if first || tmax == tmin {
		return s
	}
	if vmax == vmin {
		vmax++
		vmin--
	}
	pad := (vmax - vmin) * 0.05
	vmin -= pad
	vmax += pad
	xAt := func(t int64) int {
		return int(float64(t-tmin) / float64(tmax-tmin) * float64(width-1))
	}
	yAt := func(v float64) int {
		return int((vmax - v) / (vmax - vmin) * float64(height-1))
	}
	pts := make([]geom.Pt, 0, 256)
	for i, v := range views {
		c := draw.PaletteColor(i)
		band := c.Blend(draw.ScopeBG, 0.65)
		for _, bk := range v.Buckets {
			x := xAt(bk.Time)
			s.VLine(x, yAt(bk.Max), yAt(bk.Min), band)
		}
		pts = pts[:0]
		for _, bk := range v.Buckets {
			pts = append(pts, geom.Pt{X: xAt(bk.Time), Y: yAt(bk.Last)})
		}
		s.Polyline(pts, c)
	}
	return s
}
