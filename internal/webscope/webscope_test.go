package webscope

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/glib"
	"repro/internal/netscope"
	"repro/internal/reclog"
	"repro/internal/testutil"
	"repro/internal/tuple"
)

func TestMain(m *testing.M) {
	testutil.VerifyTestMain(m)
}

// rig is a real hub with the web gateway attached: a RealClock loop
// running in its own goroutine (the gscoped arrangement), a backfill
// store, a parameter registry, and an HTTP client wired for cleanup.
type rig struct {
	t      *testing.T
	loop   *glib.Loop
	srv    *netscope.Server
	g      *Gateway
	base   string // http://host:port
	host   string // host:port
	client *http.Client
	delay  *core.FloatVar

	quitOnce chan struct{}
	loopDone chan struct{}
}

func newRig(t *testing.T, opts Options, setup func(srv *netscope.Server)) *rig {
	t.Helper()
	loop := glib.NewLoop(glib.RealClock{})
	srv := netscope.NewServer(loop)
	srv.SetBackfillRetention(4096)

	r := &rig{
		t: t, loop: loop, srv: srv,
		quitOnce: make(chan struct{}),
		loopDone: make(chan struct{}),
		delay:    &core.FloatVar{},
	}
	ps := core.NewParamSet()
	p := core.FloatParam("delay-ms", r.delay, 0, 1000)
	p.Step = 1
	if err := ps.Add(p); err != nil {
		t.Fatal(err)
	}
	if err := ps.Add(&core.Param{Name: "version", Get: func() float64 { return 3 }}); err != nil {
		t.Fatal(err)
	}
	srv.SetParams(ps)
	if setup != nil {
		setup(srv)
	}

	r.g = New(srv, opts)
	addr, err := srv.ListenWeb("127.0.0.1:0", r.g)
	if err != nil {
		t.Fatal(err)
	}
	r.host = addr.String()
	r.base = "http://" + r.host

	tr := &http.Transport{}
	r.client = &http.Client{Transport: tr, Timeout: 0}

	go func() {
		loop.Run() //nolint:errcheck
		close(r.loopDone)
	}()
	t.Cleanup(func() {
		r.stop()
		tr.CloseIdleConnections()
	})
	return r
}

// stop is the gscoped teardown ordering: quit the loop, wait for it,
// then Server.Close (which tears the gateway down before the hub).
// Idempotent so tests can invoke it explicitly and via cleanup.
func (r *rig) stop() {
	select {
	case <-r.quitOnce:
		return
	default:
		close(r.quitOnce)
	}
	r.loop.Quit()
	<-r.loopDone
	if err := r.srv.Close(); err != nil {
		r.t.Errorf("Server.Close: %v", err)
	}
}

// inject delivers a batch on the loop goroutine and waits for it.
func (r *rig) inject(batch ...tuple.Tuple) {
	r.t.Helper()
	done := make(chan struct{})
	r.loop.Invoke(func() {
		r.srv.InjectBatch(batch)
		close(done)
	})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		r.t.Fatal("inject: loop did not run the batch")
	}
}

func (r *rig) get(path string) (*http.Response, []byte) {
	r.t.Helper()
	resp, err := r.client.Get(r.base + path)
	if err != nil {
		r.t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		r.t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp, body
}

func (r *rig) put(path, body string) (*http.Response, []byte) {
	r.t.Helper()
	req, err := http.NewRequest(http.MethodPut, r.base+path, strings.NewReader(body))
	if err != nil {
		r.t.Fatal(err)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		r.t.Fatalf("PUT %s: %v", path, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		r.t.Fatalf("PUT %s: read body: %v", path, err)
	}
	return resp, b
}

// --- SSE client --------------------------------------------------------------

type sseEvent struct {
	name string
	data string
}

// sseClient reads an SSE stream on its own goroutine and delivers parsed
// events on a channel; closing the response body ends it.
type sseClient struct {
	resp   *http.Response
	events chan sseEvent
}

func openSSE(t *testing.T, r *rig, query string) *sseClient {
	t.Helper()
	resp, err := r.client.Get(r.base + "/v1/stream?" + query)
	if err != nil {
		t.Fatalf("GET /v1/stream: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET /v1/stream: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	c := &sseClient{resp: resp, events: make(chan sseEvent, 64)}
	t.Cleanup(func() { resp.Body.Close() })
	go func() {
		defer close(c.events)
		var ev sseEvent
		buf := make([]byte, 0, 256)
		rd := resp.Body
		chunk := make([]byte, 4096)
		flushLine := func(line string) {
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			case line == "":
				if ev.name != "" || ev.data != "" {
					c.events <- ev
					ev = sseEvent{}
				}
			}
		}
		for {
			n, err := rd.Read(chunk)
			buf = append(buf, chunk[:n]...)
			for {
				i := strings.IndexByte(string(buf), '\n')
				if i < 0 {
					break
				}
				flushLine(string(buf[:i]))
				buf = buf[i+1:]
			}
			if err != nil {
				return
			}
		}
	}()
	return c
}

// next returns the next event, failing the test on timeout or EOF.
func (c *sseClient) next(t *testing.T) sseEvent {
	t.Helper()
	select {
	case ev, ok := <-c.events:
		if !ok {
			t.Fatal("sse: stream ended early")
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("sse: timed out waiting for an event")
	}
	panic("unreachable")
}

// nextNamed skips events until one named name arrives.
func (c *sseClient) nextNamed(t *testing.T, name string) sseEvent {
	t.Helper()
	for i := 0; i < 64; i++ {
		ev := c.next(t)
		if ev.name == name {
			return ev
		}
	}
	t.Fatalf("sse: no %q event in 64 events", name)
	panic("unreachable")
}

// decodeBatch parses a batch event payload into tuples.
func decodeBatch(t *testing.T, data string) []tuple.Tuple {
	t.Helper()
	var raw [][3]any
	if err := json.Unmarshal([]byte(data), &raw); err != nil {
		t.Fatalf("batch %q: %v", data, err)
	}
	out := make([]tuple.Tuple, len(raw))
	for i, r := range raw {
		out[i] = tuple.Tuple{
			Time:  int64(r[0].(float64)),
			Value: r[1].(float64),
			Name:  r[2].(string),
		}
	}
	return out
}

// --- End-to-end: SSE ---------------------------------------------------------

// TestSSEEndToEnd drives a real net/http client through the whole lane:
// subscribe with a trailing window (backfill), receive live deltas,
// observe a parameter change pushed down the stream, and disconnect.
func TestSSEEndToEnd(t *testing.T) {
	r := newRig(t, Options{}, nil)
	r.inject(
		tuple.Tuple{Time: 1000, Value: 1, Name: "sig.a"},
		tuple.Tuple{Time: 2000, Value: 2, Name: "sig.a"},
		tuple.Tuple{Time: 1500, Value: 9, Name: "other"},
	)

	c := openSSE(t, r, "signals=sig.*&since=-60000")

	hello := c.nextNamed(t, "hello")
	var h struct {
		Proto   int      `json:"proto"`
		Format  string   `json:"format"`
		Signals []string `json:"signals"`
		SinceMS int64    `json:"sinceMS"`
		Stream  bool     `json:"stream"`
	}
	if err := json.Unmarshal([]byte(hello.data), &h); err != nil {
		t.Fatalf("hello %q: %v", hello.data, err)
	}
	if h.Proto != 2 || h.Format != "json" || h.SinceMS != -60000 || !h.Stream {
		t.Fatalf("hello = %+v", h)
	}
	if len(h.Signals) != 1 || h.Signals[0] != "sig.*" {
		t.Fatalf("hello signals = %v", h.Signals)
	}

	// Backfill: the trailing window replays the retained history, filtered
	// to the subscription, bracketed by control frames.
	var backfilled []tuple.Tuple
	sawBackfill := false
	for {
		ev := c.next(t)
		if ev.name == "batch" {
			backfilled = append(backfilled, decodeBatch(t, ev.data)...)
			continue
		}
		if ev.name != "control" {
			t.Fatalf("unexpected %q event during backfill: %s", ev.name, ev.data)
		}
		var cf struct {
			Verb   string   `json:"verb"`
			Fields []string `json:"fields"`
		}
		if err := json.Unmarshal([]byte(ev.data), &cf); err != nil {
			t.Fatalf("control %q: %v", ev.data, err)
		}
		if cf.Verb == "backfill" {
			sawBackfill = true
		}
		if cf.Verb == "backfill-end" {
			break
		}
	}
	if !sawBackfill {
		t.Fatal("no backfill control frame before backfill-end")
	}
	if len(backfilled) != 2 {
		t.Fatalf("backfill = %v, want the two sig.a tuples", backfilled)
	}
	for _, tp := range backfilled {
		if tp.Name != "sig.a" {
			t.Fatalf("backfill leaked a filtered signal: %v", tp)
		}
	}

	// Live delta.
	r.inject(tuple.Tuple{Time: 3000, Value: 3, Name: "sig.a"})
	live := decodeBatch(t, c.nextNamed(t, "batch").data)
	if len(live) != 1 || live[0] != (tuple.Tuple{Time: 3000, Value: 3, Name: "sig.a"}) {
		t.Fatalf("live batch = %v", live)
	}

	// A parameter change (set over REST) is pushed down the stream.
	resp, body := r.put("/v1/params/delay-ms", `{"value":42}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT param: %d %s", resp.StatusCode, body)
	}
	pev := c.nextNamed(t, "param")
	var pd struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal([]byte(pev.data), &pd); err != nil {
		t.Fatalf("param %q: %v", pev.data, err)
	}
	if pd.Name != "delay-ms" || pd.Value != 42 {
		t.Fatalf("param event = %+v", pd)
	}

	// Disconnect: the context watcher notices and the client slot frees.
	c.resp.Body.Close()
	testutil.WaitUntil(t, "web client count to drop", 10*time.Second, func() bool {
		return r.srv.Web().Clients() == 0
	})
}

// TestSSERejectsBadRequests covers the request-mapping error paths.
func TestSSERejectsBadRequests(t *testing.T) {
	r := newRig(t, Options{}, nil)
	for _, q := range []string{
		"max-rate=nope",
		"since=later",
		"cols=many",
		"max-rate=-1",
		"format=binary",
	} {
		resp, _ := r.get("/v1/stream?" + q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/stream?%s = %d, want 400", q, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodPost, r.base+"/v1/stream", nil)
	resp, err := r.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stream = %d, want 405", resp.StatusCode)
	}
}

// TestStreamClientCap: MaxClients stream clients get through, the next
// gets 503, and a freed slot is reusable.
func TestStreamClientCap(t *testing.T) {
	r := newRig(t, Options{MaxClients: 1}, nil)
	c := openSSE(t, r, "")
	c.nextNamed(t, "hello")

	resp, body := r.get("/v1/stream")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second stream = %d %s, want 503", resp.StatusCode, body)
	}

	c.resp.Body.Close()
	testutil.WaitUntil(t, "slot to free", 10*time.Second, func() bool {
		resp, err := r.client.Get(r.base + "/v1/stream?stream=0")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1)) //nolint:errcheck
		return resp.StatusCode == http.StatusOK
	})
}

// --- /v1/view ----------------------------------------------------------------

type viewResponse struct {
	NewestMS *int64 `json:"newestMS"`
	FromMS   int64  `json:"fromMS"`
	Cols     int    `json:"cols"`
	Signals  []struct {
		Name    string       `json:"name"`
		Buckets [][5]float64 `json:"buckets"`
	} `json:"signals"`
}

func TestViewJSON(t *testing.T) {
	r := newRig(t, Options{}, nil)
	batch := make([]tuple.Tuple, 0, 64)
	for i := 0; i < 64; i++ {
		batch = append(batch,
			tuple.Tuple{Time: int64(i * 100), Value: float64(i), Name: "cps"},
			tuple.Tuple{Time: int64(i * 100), Value: float64(-i), Name: "errps"},
		)
	}
	r.inject(batch...)

	resp, body := r.get("/v1/view?signals=cps&from=-60000&cols=16")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("view: %d %s", resp.StatusCode, body)
	}
	var v viewResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("view body %s: %v", body, err)
	}
	if v.NewestMS == nil || *v.NewestMS != 6300 {
		t.Fatalf("newestMS = %v, want 6300", v.NewestMS)
	}
	if v.Cols != 16 || v.FromMS != -60000 {
		t.Fatalf("echoed cols/from = %d/%d", v.Cols, v.FromMS)
	}
	if len(v.Signals) != 1 || v.Signals[0].Name != "cps" {
		t.Fatalf("signals = %+v, want just cps", v.Signals)
	}
	if len(v.Signals[0].Buckets) == 0 {
		t.Fatal("no buckets for cps")
	}
	for _, bk := range v.Signals[0].Buckets {
		if bk[1] > bk[2] { // min > max
			t.Fatalf("bucket min > max: %v", bk)
		}
		if bk[4] <= 0 { // count
			t.Fatalf("empty bucket leaked: %v", bk)
		}
	}

	// An explicit `to` trims the envelope's tail.
	_, body = r.get("/v1/view?signals=cps&from=-60000&to=3000&cols=16")
	var trimmed viewResponse
	if err := json.Unmarshal(body, &trimmed); err != nil {
		t.Fatal(err)
	}
	if len(trimmed.Signals) != 1 {
		t.Fatalf("trimmed signals = %+v", trimmed.Signals)
	}
	for _, bk := range trimmed.Signals[0].Buckets {
		if int64(bk[0]) > 3000 {
			t.Fatalf("bucket past to=3000: %v", bk)
		}
	}

	// No match → empty signal list, still a valid envelope.
	_, body = r.get("/v1/view?signals=nothing")
	var empty viewResponse
	if err := json.Unmarshal(body, &empty); err != nil {
		t.Fatal(err)
	}
	if len(empty.Signals) != 0 {
		t.Fatalf("signals = %+v, want none", empty.Signals)
	}

	// Bad pattern → 400.
	resp, _ = r.get("/v1/view?signals=" + url.QueryEscape("[bad"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad pattern = %d, want 400", resp.StatusCode)
	}
}

func TestViewPNG(t *testing.T) {
	r := newRig(t, Options{}, nil)
	var batch []tuple.Tuple
	for i := 0; i < 32; i++ {
		batch = append(batch, tuple.Tuple{Time: int64(i * 50), Value: float64(i % 7), Name: "cps"})
	}
	r.inject(batch...)

	resp, body := r.get("/v1/view?signals=cps&format=png&w=320&h=120")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("png view: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/png" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if len(body) < 8 || string(body[1:4]) != "PNG" {
		t.Fatalf("not a PNG (%d bytes)", len(body))
	}
}

// TestViewRequiresBackfillStore: without SetBackfillRetention the
// endpoint reports 409 rather than silently returning nothing.
func TestViewRequiresBackfillStore(t *testing.T) {
	loop := glib.NewLoop(glib.RealClock{})
	srv := netscope.NewServer(loop)
	g := New(srv, Options{})
	addr, err := srv.ListenWeb("127.0.0.1:0", g)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		loop.Run() //nolint:errcheck
		close(done)
	}()
	t.Cleanup(func() { srv.Close() })
	defer func() {
		loop.Quit()
		<-done
	}()

	resp, err := http.Get("http://" + addr.String() + "/v1/view")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	http.DefaultClient.CloseIdleConnections()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("view without store = %d, want 409", resp.StatusCode)
	}
}

// --- /v1/params --------------------------------------------------------------

func TestParamsREST(t *testing.T) {
	r := newRig(t, Options{}, nil)

	resp, body := r.get("/v1/params")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("params list: %d %s", resp.StatusCode, body)
	}
	var list struct {
		Params []paramJSON `json:"params"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Params) != 2 {
		t.Fatalf("params = %+v, want delay-ms and version", list.Params)
	}

	resp, body = r.get("/v1/params/delay-ms")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("param get: %d %s", resp.StatusCode, body)
	}
	var p paramJSON
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if p.Name != "delay-ms" || p.Min != 0 || p.Max != 1000 || p.ReadOnly {
		t.Fatalf("delay-ms info = %+v", p)
	}

	// PUT with a JSON body sets and echoes the stored value.
	resp, body = r.put("/v1/params/delay-ms", `{"value":80}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("param put: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if p.Value != 80 || r.delay.Load() != 80 {
		t.Fatalf("set delay-ms: reply %v, var %v", p.Value, r.delay.Load())
	}

	// Out-of-range values come back clamped, like every other set path.
	_, body = r.put("/v1/params/delay-ms", `{"value":5000}`)
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if p.Value != 1000 {
		t.Fatalf("clamped value = %v, want 1000", p.Value)
	}

	// ?value= is the query-parameter fallback.
	_, body = r.put("/v1/params/delay-ms?value=7", "")
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if p.Value != 7 {
		t.Fatalf("query-set value = %v, want 7", p.Value)
	}

	// Error paths: unknown name, read-only, bad body, non-finite.
	if resp, _ = r.put("/v1/params/nope", `{"value":1}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown param = %d, want 404", resp.StatusCode)
	}
	if resp, _ = r.put("/v1/params/version", `{"value":1}`); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("read-only param = %d, want 403", resp.StatusCode)
	}
	if resp, _ = r.put("/v1/params/delay-ms", `nonsense`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body = %d, want 400", resp.StatusCode)
	}
	if resp, _ = r.put("/v1/params/delay-ms", `{"value":null}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing value = %d, want 400", resp.StatusCode)
	}
}

// TestParamsWithoutRegistry: a hub without SetParams 404s.
func TestParamsWithoutRegistry(t *testing.T) {
	loop := glib.NewLoop(glib.RealClock{})
	srv := netscope.NewServer(loop)
	g := New(srv, Options{})
	addr, err := srv.ListenWeb("127.0.0.1:0", g)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	resp, err := http.Get("http://" + addr.String() + "/v1/params")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	http.DefaultClient.CloseIdleConnections()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("params without registry = %d, want 404", resp.StatusCode)
	}
}

// --- /v1/sessions ------------------------------------------------------------

func TestSessions(t *testing.T) {
	dir := t.TempDir()
	var lg *reclog.Log
	r := newRig(t, Options{}, func(srv *netscope.Server) {
		var err error
		lg, err = srv.Record(dir, reclog.Options{})
		if err != nil {
			t.Fatal(err)
		}
	})
	var batch []tuple.Tuple
	for i := 0; i < 100; i++ {
		batch = append(batch, tuple.Tuple{Time: int64(i * 10), Value: float64(i), Name: "cps"})
		batch = append(batch, tuple.Tuple{Time: int64(i * 10), Value: 1, Name: "noise"})
	}
	r.inject(batch...)
	if err := lg.Flush(); err != nil {
		t.Fatal(err)
	}

	resp, body := r.get("/v1/sessions")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sessions: %d %s", resp.StatusCode, body)
	}
	var listing struct {
		Sessions []sessionJSON `json:"sessions"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Sessions) != 1 {
		t.Fatalf("sessions = %+v, want one", listing.Sessions)
	}
	s := listing.Sessions[0]
	if s.ID != 0 || s.Dir != dir || s.Tuples != 200 {
		t.Fatalf("session = %+v", s)
	}
	if s.FirstMS == nil || *s.FirstMS != 0 || s.LastMS == nil || *s.LastMS != 990 {
		t.Fatalf("session bounds = %v..%v", s.FirstMS, s.LastMS)
	}

	// A time-window, signal-filtered query.
	resp, body = r.get("/v1/sessions/0?from=500&to=700&signals=cps")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session query: %d %s", resp.StatusCode, body)
	}
	var q struct {
		Dir       string   `json:"dir"`
		Truncated bool     `json:"truncated"`
		Tuples    [][3]any `json:"tuples"`
	}
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatalf("query body %s: %v", body, err)
	}
	if q.Dir != dir || q.Truncated {
		t.Fatalf("query meta = %+v", q)
	}
	if len(q.Tuples) == 0 {
		t.Fatal("windowed query returned nothing")
	}
	for _, tp := range q.Tuples {
		ms := int64(tp[0].(float64))
		if ms < 500 || ms > 700 {
			t.Fatalf("tuple outside window: %v", tp)
		}
		if tp[2].(string) != "cps" {
			t.Fatalf("filter leaked %v", tp)
		}
	}

	// limit keeps the newest tuples and reports the truncation.
	_, body = r.get("/v1/sessions/0?signals=cps&limit=5")
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if !q.Truncated || len(q.Tuples) != 5 {
		t.Fatalf("limited query: truncated=%v n=%d", q.Truncated, len(q.Tuples))
	}
	if last := q.Tuples[len(q.Tuples)-1]; int64(last[0].(float64)) != 990 {
		t.Fatalf("limit did not keep the newest: %v", last)
	}

	// Unknown session IDs 404.
	if resp, _ = r.get("/v1/sessions/7"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session = %d, want 404", resp.StatusCode)
	}
}

// TestSessionsWithoutRecorder: no -record → empty listing, query 404s.
func TestSessionsWithoutRecorder(t *testing.T) {
	r := newRig(t, Options{}, nil)
	_, body := r.get("/v1/sessions")
	var listing struct {
		Sessions []sessionJSON `json:"sessions"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Sessions) != 0 {
		t.Fatalf("sessions = %+v, want none", listing.Sessions)
	}
	if resp, _ := r.get("/v1/sessions/0"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("query without recorder = %d, want 404", resp.StatusCode)
	}
}

// --- Dashboard and counters --------------------------------------------------

func TestDashboard(t *testing.T) {
	r := newRig(t, Options{}, nil)
	resp, body := r.get("/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dashboard: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "<canvas") || !strings.Contains(string(body), "/v1/stream") {
		t.Fatal("dashboard HTML lacks the canvas viewer")
	}
	if resp, _ := r.get("/definitely-not-here"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", resp.StatusCode)
	}
}

func TestNoDashboard(t *testing.T) {
	r := newRig(t, Options{NoDashboard: true}, nil)
	if resp, _ := r.get("/"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("dashboard with NoDashboard = %d, want 404", resp.StatusCode)
	}
	if resp, _ := r.get("/v1/params"); resp.StatusCode != http.StatusOK {
		t.Fatalf("API with NoDashboard = %d, want 200", resp.StatusCode)
	}
}

// TestFanoutStatsWebLane: the hub's FanoutStats and the -ansi status
// line both see the gateway's counters.
func TestFanoutStatsWebLane(t *testing.T) {
	r := newRig(t, Options{}, nil)
	c := openSSE(t, r, "")
	c.nextNamed(t, "hello")

	var fs netscope.FanoutStats
	done := make(chan struct{})
	r.loop.Invoke(func() {
		fs = r.srv.FanoutStats()
		close(done)
	})
	<-done
	if fs.WebClients != 1 {
		t.Fatalf("FanoutStats.WebClients = %d, want 1", fs.WebClients)
	}

	line := string(r.srv.AppendWebStats(nil))
	if !strings.HasPrefix(line, "web clients=1 served=1 ") {
		t.Fatalf("AppendWebStats = %q", line)
	}
	if n := testing.AllocsPerRun(20, func() {
		buf := make([]byte, 0, 128)
		_ = r.srv.AppendWebStats(buf)
	}); n > 1 { // one alloc: the test's own buffer
		t.Fatalf("AppendWebStats allocates %v per run", n)
	}

	c.resp.Body.Close()
	testutil.WaitUntil(t, "client counter to drop", 10*time.Second, func() bool {
		return r.srv.Web().Clients() == 0
	})
}

// --- Teardown ----------------------------------------------------------------

// TestServerCloseWithLiveStreams is the leak regression for the teardown
// ordering: Server.Close with in-flight SSE and WebSocket streams must
// terminate every handler and writer goroutine (TestMain's leak check
// enforces the "no goroutine survives" half).
func TestServerCloseWithLiveStreams(t *testing.T) {
	r := newRig(t, Options{}, nil)
	r.inject(tuple.Tuple{Time: 1000, Value: 1, Name: "cps"})

	// One SSE stream and one WebSocket stream, both live.
	c := openSSE(t, r, "since=-60000")
	c.nextNamed(t, "hello")
	ws := dialWS(t, r.host, "/v1/ws?since=-60000")
	ws.expectEvent(t, "hello")

	if got := r.srv.Web().Clients(); got != 2 {
		t.Fatalf("live clients = %d, want 2", got)
	}

	// The gscoped shutdown path: quit the loop, then Server.Close. Close
	// must not return with gateway goroutines still running.
	r.stop()

	if got := r.srv.Web().Clients(); got != 0 {
		t.Fatalf("clients after Close = %d, want 0", got)
	}
	// Both streams observe EOF/close promptly.
	testutil.WaitUntil(t, "sse stream to end", 10*time.Second, func() bool {
		select {
		case _, ok := <-c.events:
			return !ok
		default:
			return false
		}
	})
	// New connections are refused: the listener is down.
	if _, err := r.client.Get(r.base + "/v1/params"); err == nil {
		t.Fatal("request succeeded after Server.Close")
	}
	// Close is idempotent.
	if err := r.srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestGatewayCloseRejectsNewStreams: a closed gateway answers 503.
func TestGatewayCloseRejectsNewStreams(t *testing.T) {
	r := newRig(t, Options{}, nil)
	if err := r.g.Close(); err != nil {
		t.Fatal(err)
	}
	resp, _ := r.get("/v1/stream")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stream on closed gateway = %d, want 503", resp.StatusCode)
	}
	resp, _ = r.get("/v1/view")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("view on closed gateway = %d, want 503", resp.StatusCode)
	}
}

// --- Unit: query-parameter mapping ------------------------------------------

func TestStreamRequestMapping(t *testing.T) {
	q := url.Values{}
	q.Set("signals", "a,b.*")
	q.Add("signals", "c")
	q.Set("max-rate", "30")
	q.Set("since", "-10s")
	q.Set("cols", "512")
	q.Set("stream", "0")
	req, format, err := streamRequest(q)
	if err != nil {
		t.Fatal(err)
	}
	if format != "json" {
		t.Fatalf("format = %q", format)
	}
	want := []string{"a", "b.*", "c"}
	if len(req.Signals) != len(want) {
		t.Fatalf("signals = %v", req.Signals)
	}
	for i := range want {
		if req.Signals[i] != want[i] {
			t.Fatalf("signals = %v, want %v", req.Signals, want)
		}
	}
	if req.MaxRate != 30 || req.Since != -10*time.Second || req.Cols != 512 || !req.NoStream {
		t.Fatalf("req = %+v", req)
	}

	// Millisecond since form.
	q = url.Values{"since": {"-2500"}}
	req, _, err = streamRequest(q)
	if err != nil {
		t.Fatal(err)
	}
	if req.Since != -2500*time.Millisecond {
		t.Fatalf("since = %v", req.Since)
	}

	// Validation failures propagate.
	if _, _, err := streamRequest(url.Values{"max-rate": {"-3"}}); err == nil {
		t.Fatal("negative max-rate accepted")
	}
	if _, _, err := streamRequest(url.Values{"since": {"whenever"}}); err == nil {
		t.Fatal("bad since accepted")
	}
}

// --- Unit: the event queue ---------------------------------------------------

func TestEventQueueDropOldest(t *testing.T) {
	q := newEventQueue(2)
	if d := q.push([]byte("a")); len(d) != 0 {
		t.Fatalf("dropped %v on first push", d)
	}
	q.push([]byte("b"))
	d := q.push([]byte("c"))
	if len(d) != 1 || string(d[0]) != "a" {
		t.Fatalf("dropped = %q, want oldest (a)", d)
	}
	if q.drops() != 1 {
		t.Fatalf("drops = %d", q.drops())
	}
	got, ok := q.pop()
	if !ok || string(got) != "b" {
		t.Fatalf("pop = %q %v", got, ok)
	}
}

func TestEventQueueProtected(t *testing.T) {
	q := newEventQueue(2)
	q.push([]byte("a"))
	q.pushProtected([]byte("pong"))
	// The queue is at its limit; each push drops the oldest droppable
	// event, never the pong.
	if d := q.push([]byte("b")); len(d) != 1 || string(d[0]) != "a" {
		t.Fatalf("dropped %q, want a", d)
	}
	if d := q.push([]byte("c")); len(d) != 1 || string(d[0]) != "b" {
		t.Fatalf("dropped %q, want b", d)
	}
	var order []string
	for i := 0; i < 2; i++ {
		v, ok := q.pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		order = append(order, string(v))
	}
	if fmt.Sprint(order) != "[pong c]" {
		t.Fatalf("order = %v", order)
	}
}

func TestEventQueueCloseUnblocksPop(t *testing.T) {
	q := newEventQueue(4)
	done := make(chan bool)
	go func() {
		_, ok := q.pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("pop returned ok after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pop did not unblock on close")
	}
	// Pushing into a closed queue hands the buffer straight back.
	if d := q.push([]byte("x")); len(d) != 1 {
		t.Fatalf("closed push kept the buffer: %v", d)
	}
}
