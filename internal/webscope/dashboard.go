package webscope

import (
	_ "embed"
	"net/http"
)

// The embedded dashboard: one self-contained HTML+canvas page, no build
// step, no external assets — `gscoped -http :8080` plus a browser is a
// working live scope. It subscribes over SSE with a trailing window,
// draws a strip chart per signal, and mirrors the parameter registry
// with live sliders.

//go:embed dashboard.html
var dashboardHTML []byte

// handleDashboard serves the embedded viewer at / (exact path only, so
// typos 404 instead of silently rendering the dashboard).
func (g *Gateway) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		httpError(w, http.StatusNotFound, "not found")
		return
	}
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "dashboard requires GET")
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashboardHTML) //nolint:errcheck // client gone is the only failure
}
