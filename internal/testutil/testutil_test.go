package testutil

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestPollReturnsOnceConditionHolds(t *testing.T) {
	var n atomic.Int64
	start := time.Now()
	ok := Poll(DefaultWaitTimeout, func() bool { return n.Add(1) >= 3 })
	if !ok {
		t.Fatal("Poll gave up on a condition that becomes true")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Poll took %s for a condition true on the third check", elapsed)
	}
}

func TestPollTimesOut(t *testing.T) {
	start := time.Now()
	if Poll(20*time.Millisecond, func() bool { return false }) {
		t.Fatal("Poll reported success for an impossible condition")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Poll overshot its 20ms timeout by a lot: %s", elapsed)
	}
}

func TestWaitForPassesQuickConditions(t *testing.T) {
	done := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(done)
	}()
	WaitFor(t, "channel close", func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	})
}

func TestPumpUntilSteps(t *testing.T) {
	steps := 0
	PumpUntil(t, "three steps", func() { steps++ }, func() bool { return steps >= 3 })
	if steps < 3 {
		t.Fatalf("PumpUntil stopped after %d steps", steps)
	}
}

func TestCheckLeaksCleanBaseline(t *testing.T) {
	if err := CheckLeaksWithin(100 * time.Millisecond); err != nil {
		t.Fatalf("baseline has leaks: %v", err)
	}
}

func TestCheckLeaksCatchesABlockedGoroutine(t *testing.T) {
	release := make(chan struct{})
	go leakyForTest(release)
	defer close(release)

	err := CheckLeaksWithin(50 * time.Millisecond)
	if err == nil {
		t.Fatal("CheckLeaks missed a parked goroutine")
	}
	if !strings.Contains(err.Error(), "leakyForTest") {
		t.Fatalf("leak report does not name the culprit: %v", err)
	}

	// The same goroutine is tolerated when explicitly ignored.
	if err := CheckLeaksWithin(50*time.Millisecond, "leakyForTest"); err != nil {
		t.Fatalf("ignore list not honored: %v", err)
	}
}

func TestCheckLeaksWaitsForStragglers(t *testing.T) {
	done := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(done)
	}()
	<-done // goroutine is exiting right about now
	if err := CheckLeaks(); err != nil {
		t.Fatalf("goroutine mid-exit reported as leak: %v", err)
	}
}

// leakyForTest parks until released; its name is what the leak report
// must surface.
func leakyForTest(release chan struct{}) { <-release }
