package testutil

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/vet"
)

// This file is the analysistest-style harness for the gscope-vet
// analyzers (stdlib-only, like the vet framework itself — see
// internal/vet's package comment for why x/tools is not available).
// Tests hand RunAnalyzer a map of inline sources; every line that should
// produce a diagnostic carries a trailing expectation comment:
//
//	p.buf = nil // want `without holding mu`
//	s := fmt.Sprint(v) //gscope:allow hotpath reason // allowed `fmt`
//
// `// want` expects an unsuppressed diagnostic on that line whose
// message matches the backquoted regexp; `// allowed` expects a
// diagnostic suppressed by a //gscope:allow on the same (or previous)
// line. Diagnostics without expectations and expectations without
// diagnostics both fail the test, so suites pin exact analyzer behavior
// in both directions.

// expectRe matches one expectation comment. The message pattern is
// backquoted so expectation regexps can contain double quotes.
var expectRe = regexp.MustCompile("// (want|allowed) `([^`]*)`")

// AnalyzerResult is what RunAnalyzer returns, for tests that assert on
// more than line expectations (e.g. suppression counts).
type AnalyzerResult struct {
	Findings []vet.Finding
	Summary  vet.Summary
}

// RunAnalyzer type-checks the inline sources as one package (imports of
// real repro/... packages resolve through the module's build cache, so
// test sources exercise the real tuple/glib/core APIs), runs the
// analyzer plus the //gscope:allow suppression pipeline over it, and
// compares every diagnostic against the sources' `// want` / `// allowed`
// expectations.
func RunAnalyzer(t *testing.T, a *vet.Analyzer, sources map[string]string) AnalyzerResult {
	t.Helper()
	root := moduleRoot(t)

	fset := token.NewFileSet()
	var files []*ast.File
	var expects []*expectation
	for _, name := range sortedKeys(sources) {
		src := sources[name]
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
		expects = append(expects, parseExpectations(t, name, src)...)
	}

	info := vet.NewInfo()
	conf := types.Config{Importer: vet.NewImporter(fset, root)}
	pkgPath := "repro/vettest/" + files[0].Name.Name
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}

	module := vet.NewModule()
	module.Internal[pkgPath] = true
	if err := vet.CollectFacts(module, files, info); err != nil {
		t.Fatalf("collect facts: %v", err)
	}
	prog := &vet.Program{
		Fset:   fset,
		Module: module,
		Packages: []*vet.Package{{
			ImportPath: pkgPath,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		}},
	}
	findings, sum, err := prog.Run([]*vet.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	for i := range findings {
		f := &findings[i]
		matched := false
		for _, e := range expects {
			if e.matched || e.file != f.Pos.Filename || e.line != f.Pos.Line {
				continue
			}
			if e.allowed == f.Suppressed && e.re.MatchString(f.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			kind := "diagnostic"
			if f.Suppressed {
				kind = "suppressed diagnostic"
			}
			t.Errorf("%s: unexpected %s: %s: %s", f.Pos, kind, f.Analyzer, f.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			kind := "want"
			if e.allowed {
				kind = "allowed"
			}
			t.Errorf("%s:%d: no diagnostic matched // %s `%s`", e.file, e.line, kind, e.re)
		}
	}
	return AnalyzerResult{Findings: findings, Summary: sum}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == filepath.FromSlash("/dev/null") {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

// sortedKeys returns the file names in lexical order so file order —
// and thus fact collection and diagnostics — is stable run to run.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// expectation is one parsed want/allowed comment.
type expectation struct {
	file    string
	line    int
	allowed bool
	re      *regexp.Regexp
	matched bool
}

func parseExpectations(t *testing.T, name, src string) []*expectation {
	t.Helper()
	var out []*expectation
	for i, line := range strings.Split(src, "\n") {
		for _, m := range expectRe.FindAllStringSubmatch(line, -1) {
			re, err := regexp.Compile(m[2])
			if err != nil {
				t.Fatalf("%s:%d: bad expectation regexp %q: %v", name, i+1, m[2], err)
			}
			out = append(out, &expectation{file: name, line: i + 1, allowed: m[1] == "allowed", re: re})
		}
	}
	return out
}
