// Package testutil holds the small shared test harness the e2e suites
// lean on: condition polling (instead of fixed sleeps, which soak runs
// under -race showed to be either flaky or wastefully long) and a
// goroutine-leak check in the spirit of go.uber.org/goleak, implemented
// locally so the module stays dependency-free.
package testutil

import (
	"testing"
	"time"
)

// DefaultWaitTimeout bounds WaitFor and PumpUntil. Five seconds is far
// beyond any healthy convergence in this codebase (queues drain in
// microseconds; reconnect backoff tops out at 5s only after repeated
// failures) while keeping a genuinely stuck test from eating the whole
// package deadline.
const DefaultWaitTimeout = 5 * time.Second

// WaitFor polls cond every millisecond until it holds, failing the test
// after DefaultWaitTimeout. what names the condition in the failure
// message ("recorder drained", "subscriber saw snapshot").
func WaitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	WaitUntil(t, what, DefaultWaitTimeout, cond)
}

// WaitUntil is WaitFor with an explicit timeout.
func WaitUntil(t testing.TB, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	if !Poll(timeout, cond) {
		t.Fatalf("timed out after %s waiting for %s", timeout, what)
	}
}

// Poll reports whether cond held within timeout, checking every
// millisecond. It is the non-fatal core of WaitFor, usable outside a
// testing.TB (the soak harness polls with it).
func Poll(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return cond()
		}
		time.Sleep(time.Millisecond)
	}
}

// PumpUntil repeatedly runs step (typically a glib loop Iterate) and
// checks cond, failing the test if cond does not hold within
// DefaultWaitTimeout. It yields between iterations so goroutines the
// stepped code is waiting on (socket reads, queue drains) get scheduled.
func PumpUntil(t testing.TB, what string, step func(), cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(DefaultWaitTimeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %s pumping for %s", DefaultWaitTimeout, what)
		}
		step()
		time.Sleep(time.Millisecond)
	}
}
