package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// This file is a dependency-free stand-in for go.uber.org/goleak (the
// module deliberately has no external requirements): it snapshots every
// goroutine stack, filters the ones the runtime and the testing harness
// legitimately keep alive, retries while stragglers wind down, and
// reports whatever is left as a leak.

// defaultLeakWait bounds how long CheckLeaks retries before declaring a
// leak. Shutdown paths in this codebase are bounded — writer goroutines
// exit when their queue closes, reconnect backoff re-checks closed every
// cycle — so anything still alive after several seconds is wedged, not
// slow.
const defaultLeakWait = 5 * time.Second

// ignoredStacks marks goroutines that are part of the test harness or
// runtime rather than code under test. Matching is by substring over the
// whole stack dump.
var ignoredStacks = []string{
	"testing.Main(",
	"testing.runTests(",
	"testing.(*T).Run(",
	"testing.(*M).",
	"testing.runFuzzing(",
	"testing.runFuzzTests(",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime.ReadTrace",
	"runtime.ensureSigM",
	// The goroutine running the check itself.
	"repro/internal/testutil.goroutineStacks",
}

// runtimeStack is runtime.Stack behind a named wrapper so the checking
// goroutine's own dump carries a frame the ignore list can match.
func runtimeStack(buf []byte) int { return runtime.Stack(buf, true) }

// goroutineStacks returns one stack dump per live goroutine.
func goroutineStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtimeStack(buf)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	return strings.Split(strings.TrimSpace(string(buf)), "\n\n")
}

// leaked returns the stacks that survive filtering, or nil when every
// goroutine is accounted for.
func leaked(extraIgnores []string) []string {
	var out []string
next:
	for _, st := range goroutineStacks() {
		for _, ig := range ignoredStacks {
			if strings.Contains(st, ig) {
				continue next
			}
		}
		for _, ig := range extraIgnores {
			if strings.Contains(st, ig) {
				continue next
			}
		}
		out = append(out, st)
	}
	return out
}

// CheckLeaks scans for goroutines that outlived the code under test,
// retrying for a few seconds so goroutines legitimately mid-shutdown can
// finish. Goroutines whose stack contains any of extraIgnores
// (substring match, e.g. a function name) are tolerated. It returns an
// error describing the leaked stacks, or nil.
func CheckLeaks(extraIgnores ...string) error {
	return CheckLeaksWithin(defaultLeakWait, extraIgnores...)
}

// CheckLeaksWithin is CheckLeaks with an explicit retry budget.
func CheckLeaksWithin(wait time.Duration, extraIgnores ...string) error {
	deadline := time.Now().Add(wait)
	var last []string
	for {
		last = leaked(extraIgnores)
		if len(last) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("found %d leaked goroutine(s):\n\n%s",
		len(last), strings.Join(last, "\n\n"))
}

// VerifyTestMain wraps m.Run with a leak check, the way
// goleak.VerifyTestMain does:
//
//	func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
//
// The check runs only when the tests themselves passed — a failing test
// may legitimately abandon goroutines mid-flight, and its own failure is
// the signal that matters.
func VerifyTestMain(m *testing.M, extraIgnores ...string) {
	code := m.Run()
	if code == 0 {
		if err := CheckLeaks(extraIgnores...); err != nil {
			fmt.Fprintf(os.Stderr, "testutil: goroutine leak after tests passed: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}
