// Package figures regenerates every figure of the paper from the
// reproduction's own components. Each Figure* function assembles the
// relevant workload, drives it deterministically on a virtual clock, and
// returns the rendered frame plus the quantities EXPERIMENTS.md records.
// The bench harness, the cmd tools and the examples all call through this
// package so the artifacts stay consistent.
package figures

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/draw"
	"repro/internal/glib"
	"repro/internal/gtk"
	"repro/internal/mxtraf"
)

// CanvasW and CanvasH match the roughly 600×200 scope canvas of the
// paper's screenshots.
const (
	CanvasW = 600
	CanvasH = 200
)

// Rig bundles a deterministic scope stack.
type Rig struct {
	Clock *glib.VirtualClock
	Loop  *glib.Loop
	Scope *core.Scope
}

// NewRig builds a virtual-clock loop and scope with ideal timers.
func NewRig(name string, w, h int) *Rig {
	vc := glib.NewVirtualClock(time.Unix(0, 0))
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	return &Rig{Clock: vc, Loop: loop, Scope: core.New(loop, name, w, h)}
}

// Figure1 recreates the GtkScope widget screenshot: a scope window with
// two signals (a sine and a sawtooth), zoom/bias/period/delay controls and
// per-signal rows with the Value button enabled on the second signal.
func Figure1() (*draw.Surface, error) {
	rig := NewRig("gscope", CanvasW, CanvasH)
	step := 0
	sine := core.FuncSource(func() float64 {
		return 50 + 35*math.Sin(2*math.Pi*float64(step)/80)
	})
	saw := core.FuncSource(func() float64 {
		return float64((step * 2) % 100)
	})
	if _, err := rig.Scope.AddSignal(core.Sig{Name: "sine", Source: sine}); err != nil {
		return nil, err
	}
	sig2, err := rig.Scope.AddSignal(core.Sig{Name: "sawtooth", Source: saw})
	if err != nil {
		return nil, err
	}
	sig2.SetShowValue(true)
	if err := rig.Scope.SetPollingMode(50 * time.Millisecond); err != nil {
		return nil, err
	}
	if err := rig.Scope.StartPolling(); err != nil {
		return nil, err
	}
	for i := 0; i < CanvasW; i++ {
		step++
		rig.Loop.Advance(50 * time.Millisecond)
	}
	w := gtk.NewScopeWidget(rig.Scope)
	return w.RenderFrame(), nil
}

// Figure2 recreates the signal-parameters window for a CWND-like signal.
func Figure2() (*draw.Surface, error) {
	rig := NewRig("gscope", CanvasW, CanvasH)
	var v core.IntVar
	sig, err := rig.Scope.AddSignal(core.Sig{
		Name: "CWND", Source: &v, Min: 0, Max: 40, FilterAlpha: 0.2,
	})
	if err != nil {
		return nil, err
	}
	return gtk.SignalParamsWindow(sig).Render(), nil
}

// Figure3 recreates the application/control parameters window with the two
// mxtraf-style parameters the paper shows.
func Figure3() (*draw.Surface, error) {
	params := core.NewParamSet()
	var elephants, mice core.IntVar
	elephants.Store(8)
	mice.Store(64)
	if err := params.Add(core.IntParam("elephants", &elephants, 0, 40)); err != nil {
		return nil, err
	}
	if err := params.Add(core.IntParam("mice", &mice, 0, 512)); err != nil {
		return nil, err
	}
	return gtk.ControlParamsWindow("mxtraf parameters", params).Render(), nil
}

// TCPResult captures the quantities Figures 4/5 demonstrate.
type TCPResult struct {
	Frame *draw.Surface
	// TimeoutsDuring8 and TimeoutsDuring16 count observed-flow timeouts
	// in each half of the run.
	TimeoutsDuring8, TimeoutsDuring16 int64
	// TotalTimeouts counts timeouts across all flows for the whole run.
	TotalTimeouts int64
	// CwndMin1Hits counts polling samples where the observed flow's CWND
	// was pinned at its floor (the "CWND reaches one" events of §2).
	CwndMin1Hits int
	// MeanCwnd8 and MeanCwnd16 are the observed flow's average window in
	// each half.
	MeanCwnd8, MeanCwnd16 float64
}

// TCPExperimentConfig parameterizes the Figure 4/5 run.
type TCPExperimentConfig struct {
	// ECN selects the Figure 5 variant (RED router, ECN senders).
	ECN bool
	// HalfDuration is the length of each half (8 flows, then 16).
	HalfDuration time.Duration
	// Period is the scope polling period.
	Period time.Duration
	// Seed makes the run reproducible.
	Seed int64
}

// DefaultTCPExperiment returns the published run shape: 8 elephants for
// the first half of the sweep, 16 for the second, 50 ms polling.
func DefaultTCPExperiment(ecn bool) TCPExperimentConfig {
	return TCPExperimentConfig{
		ECN:          ecn,
		HalfDuration: 15 * time.Second,
		Period:       50 * time.Millisecond,
		Seed:         1,
	}
}

// RunTCPExperiment reproduces Figures 4 and 5: mxtraf elephants through
// the emulated router, the elephants count switched 8→16 half way, with
// the "elephants" and "CWND" signals polled onto a scope. The observed
// CWND belongs to elephant 0 (an arbitrarily chosen long-lived flow, as in
// the paper).
func RunTCPExperiment(cfg TCPExperimentConfig) (*TCPResult, error) {
	var gcfg mxtraf.Config
	if cfg.ECN {
		gcfg = mxtraf.ECNConfig()
	} else {
		gcfg = mxtraf.DefaultConfig()
	}
	gcfg.Seed = cfg.Seed
	gcfg.Net.Seed = cfg.Seed
	gen := mxtraf.New(gcfg)

	rig := NewRig(map[bool]string{false: "gscope - TCP", true: "gscope - ECN"}[cfg.ECN], CanvasW, CanvasH)
	sc := rig.Scope

	elephantsSig := core.FuncSource(func() float64 { return float64(gen.Elephants()) })
	cwndSig := core.FuncSource(func() float64 { return gen.ElephantCwnd(0) })
	if _, err := sc.AddSignal(core.Sig{Name: "elephants", Source: elephantsSig, Min: 0, Max: 20, Color: draw.Cyan, HasColor: true}); err != nil {
		return nil, err
	}
	cwnd, err := sc.AddSignal(core.Sig{Name: "CWND", Source: cwndSig, Min: 0, Max: 44, Color: draw.Yellow, HasColor: true})
	if err != nil {
		return nil, err
	}
	cwnd.SetShowValue(true)
	if err := sc.SetPollingMode(cfg.Period); err != nil {
		return nil, err
	}
	if err := sc.StartPolling(); err != nil {
		return nil, err
	}

	res := &TCPResult{}
	gen.SetElephants(8)

	// Drive the simulator and the scope in lockstep on the shared virtual
	// timeline.
	half := cfg.HalfDuration
	var sumCwnd8, sumCwnd16 float64
	var n8, n16 int
	advance := func(until time.Duration, sum *float64, n *int) {
		for gen.Sim().Now() < until {
			next := gen.Sim().Now() + cfg.Period
			gen.Sim().RunUntil(next)
			rig.Loop.Advance(cfg.Period)
			c := gen.ElephantCwnd(0)
			*sum += c
			*n++
			if c <= 1.001 && gen.Elephants() > 0 {
				res.CwndMin1Hits++
			}
		}
	}
	advance(half, &sumCwnd8, &n8)
	res.TimeoutsDuring8 = gen.ElephantTimeouts(0)
	gen.SetElephants(16)
	advance(2*half, &sumCwnd16, &n16)
	res.TimeoutsDuring16 = gen.ElephantTimeouts(0) - res.TimeoutsDuring8
	res.TotalTimeouts = gen.Net().TotalTimeouts()
	if n8 > 0 {
		res.MeanCwnd8 = sumCwnd8 / float64(n8)
	}
	if n16 > 0 {
		res.MeanCwnd16 = sumCwnd16 / float64(n16)
	}

	w := gtk.NewScopeWidget(sc)
	res.Frame = w.RenderFrame()
	return res, nil
}

// Figure4 runs the DropTail/TCP variant.
func Figure4() (*TCPResult, error) { return RunTCPExperiment(DefaultTCPExperiment(false)) }

// Figure5 runs the RED/ECN variant.
func Figure5() (*TCPResult, error) { return RunTCPExperiment(DefaultTCPExperiment(true)) }

// Summary formats a result the way EXPERIMENTS.md records it.
func (r *TCPResult) Summary(name string) string {
	return fmt.Sprintf(
		"%s: cwnd-floor hits=%d, observed-flow timeouts 8-flows=%d 16-flows=%d, all-flow timeouts=%d, mean cwnd 8=%.1f 16=%.1f",
		name, r.CwndMin1Hits, r.TimeoutsDuring8, r.TimeoutsDuring16,
		r.TotalTimeouts, r.MeanCwnd8, r.MeanCwnd16)
}
