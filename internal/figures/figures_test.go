package figures

import (
	"testing"

	"repro/internal/draw"
)

func hasColor(s *draw.Surface, c draw.RGB) bool {
	for _, p := range s.Pix {
		if p == c {
			return true
		}
	}
	return false
}

func TestFigure1Renders(t *testing.T) {
	s, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if s.W < CanvasW || s.H < CanvasH {
		t.Fatalf("figure 1 size %dx%d", s.W, s.H)
	}
	if !hasColor(s, draw.ScopeBG) {
		t.Fatal("figure 1 missing scope canvas")
	}
}

func TestFigure2And3Render(t *testing.T) {
	for i, fn := range []func() (*draw.Surface, error){Figure2, Figure3} {
		s, err := fn()
		if err != nil {
			t.Fatalf("figure %d: %v", i+2, err)
		}
		if s.W < 100 || s.H < 60 {
			t.Fatalf("figure %d too small: %dx%d", i+2, s.W, s.H)
		}
	}
}

// shortTCP is a fast variant for tests; the benches run the full length.
func shortTCP(ecn bool) TCPExperimentConfig {
	cfg := DefaultTCPExperiment(ecn)
	cfg.HalfDuration = 8e9 // 8 s halves
	return cfg
}

func TestFigure4TCPShape(t *testing.T) {
	res, err := RunTCPExperiment(shortTCP(false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Frame == nil || !hasColor(res.Frame, draw.Yellow) {
		t.Fatal("figure 4 frame missing CWND trace")
	}
	// The paper's headline: TCP hits CWND=1 several times once 16 flows
	// share the DropTail router.
	if res.TotalTimeouts == 0 {
		t.Fatal("no timeouts anywhere in the TCP run")
	}
	if res.MeanCwnd16 >= res.MeanCwnd8 {
		t.Fatalf("mean cwnd should drop when flows double: %.2f → %.2f",
			res.MeanCwnd8, res.MeanCwnd16)
	}
}

func TestFigure5ECNShape(t *testing.T) {
	res, err := RunTCPExperiment(shortTCP(true))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: ECN never hits CWND=1 (no timeouts on the
	// observed flow, and the reproduction achieves none anywhere).
	if res.TimeoutsDuring8 != 0 || res.TimeoutsDuring16 != 0 {
		t.Fatalf("ECN observed flow timed out: %d/%d",
			res.TimeoutsDuring8, res.TimeoutsDuring16)
	}
	if res.CwndMin1Hits != 0 {
		t.Fatalf("ECN CWND hit the floor %d times", res.CwndMin1Hits)
	}
	if res.MeanCwnd16 >= res.MeanCwnd8 {
		t.Fatalf("ECN mean cwnd should still drop with more flows: %.2f → %.2f",
			res.MeanCwnd8, res.MeanCwnd16)
	}
}

func TestFiguresDeterministic(t *testing.T) {
	a, err := RunTCPExperiment(shortTCP(false))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTCPExperiment(shortTCP(false))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTimeouts != b.TotalTimeouts || a.CwndMin1Hits != b.CwndMin1Hits {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if len(a.Frame.Pix) != len(b.Frame.Pix) {
		t.Fatal("frame sizes differ")
	}
	for i := range a.Frame.Pix {
		if a.Frame.Pix[i] != b.Frame.Pix[i] {
			t.Fatal("frames differ pixel-wise under the same seed")
		}
	}
}

func TestSummaryString(t *testing.T) {
	r := &TCPResult{}
	if r.Summary("x") == "" {
		t.Fatal("empty summary")
	}
}
