// Package stripchart reimplements gstripchart, the baseline the paper
// compares gscope against (§5): "the Gnome stripchart program charts
// various user-specified parameters as a function of time such as CPU load
// and network traffic levels. The gstripchart program periodically reads
// data from a file, extracts a value and displays these values. However,
// unlike Gscope, gstripchart has a configuration-file based interface
// rather than a programmatic interface, which limits its use for debugging
// or modifying system behavior."
//
// The reproduction keeps exactly that contract: signals are declared in a
// text configuration file as (name, file, regex, scale, color, range)
// tuples; the chart polls the files, extracts the first capture group and
// plots it. It reuses the scope engine for display, making the comparison
// an interface ablation: the same display stack, driven by a config file
// instead of the gscope API. Its limits relative to gscope fall out of
// the structure — no FUNC/event/BUFFER acquisition, no writable control
// parameters, no streaming, no record/replay.
package stripchart

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/draw"
	"repro/internal/glib"
)

// Entry is one configured chart parameter.
type Entry struct {
	// Name labels the trace.
	Name string
	// Filename is read on every poll.
	Filename string
	// Pattern extracts the value: its first capture group (or the whole
	// match) must parse as a float.
	Pattern *regexp.Regexp
	// Scale multiplies the extracted value (default 1).
	Scale float64
	// Color is the trace color (default: palette rotation).
	Color draw.RGB
	// HasColor marks Color as explicitly configured.
	HasColor bool
	// Min and Max give the displayed range (default 0..100).
	Min, Max float64
}

// Config is a parsed gstripchart-style configuration.
type Config struct {
	Entries []Entry
}

// ParseConfig reads a configuration of the form:
//
//	# comment
//	begin loadavg
//	  filename /proc/loadavg
//	  pattern  ^(\S+)
//	  scale    100
//	  color    #ffcc00
//	  range    0 4
//	end
func ParseConfig(r io.Reader) (*Config, error) {
	cfg := &Config{}
	sc := bufio.NewScanner(r)
	var cur *Entry
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		key := fields[0]
		rest := strings.TrimSpace(strings.TrimPrefix(text, key))
		switch key {
		case "begin":
			if cur != nil {
				return nil, fmt.Errorf("stripchart: line %d: nested begin", line)
			}
			if rest == "" {
				return nil, fmt.Errorf("stripchart: line %d: begin needs a name", line)
			}
			cur = &Entry{Name: rest, Scale: 1, Max: 100}
		case "end":
			if cur == nil {
				return nil, fmt.Errorf("stripchart: line %d: end without begin", line)
			}
			if cur.Filename == "" || cur.Pattern == nil {
				return nil, fmt.Errorf("stripchart: entry %q needs filename and pattern", cur.Name)
			}
			cfg.Entries = append(cfg.Entries, *cur)
			cur = nil
		case "filename":
			if cur == nil {
				return nil, fmt.Errorf("stripchart: line %d: %s outside begin/end", line, key)
			}
			cur.Filename = rest
		case "pattern":
			if cur == nil {
				return nil, fmt.Errorf("stripchart: line %d: %s outside begin/end", line, key)
			}
			re, err := regexp.Compile(rest)
			if err != nil {
				return nil, fmt.Errorf("stripchart: line %d: %v", line, err)
			}
			cur.Pattern = re
		case "scale":
			if cur == nil {
				return nil, fmt.Errorf("stripchart: line %d: %s outside begin/end", line, key)
			}
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return nil, fmt.Errorf("stripchart: line %d: bad scale: %v", line, err)
			}
			cur.Scale = v
		case "color":
			if cur == nil {
				return nil, fmt.Errorf("stripchart: line %d: %s outside begin/end", line, key)
			}
			c, err := draw.ParseColor(rest)
			if err != nil {
				return nil, fmt.Errorf("stripchart: line %d: %v", line, err)
			}
			cur.Color = c
			cur.HasColor = true
		case "range":
			if cur == nil {
				return nil, fmt.Errorf("stripchart: line %d: %s outside begin/end", line, key)
			}
			var lo, hi float64
			if _, err := fmt.Sscanf(rest, "%g %g", &lo, &hi); err != nil {
				return nil, fmt.Errorf("stripchart: line %d: bad range: %v", line, err)
			}
			cur.Min, cur.Max = lo, hi
		default:
			return nil, fmt.Errorf("stripchart: line %d: unknown key %q", line, key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("stripchart: entry %q missing end", cur.Name)
	}
	if len(cfg.Entries) == 0 {
		return nil, fmt.Errorf("stripchart: no entries")
	}
	return cfg, nil
}

// LoadConfig parses a configuration file.
func LoadConfig(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stripchart: %w", err)
	}
	defer f.Close()
	return ParseConfig(f)
}

// Chart is a running stripchart: the configured entries polled onto a
// scope.
type Chart struct {
	cfg   *Config
	scope *core.Scope

	readErrors int64
}

// New builds a chart over loop displaying the configured entries at the
// given polling period.
func New(loop *glib.Loop, cfg *Config, width, height int, period time.Duration) (*Chart, error) {
	ch := &Chart{cfg: cfg, scope: core.New(loop, "gstripchart", width, height)}
	for i := range cfg.Entries {
		e := cfg.Entries[i]
		src := core.FuncSource(func() float64 { return ch.read(&e) })
		_, err := ch.scope.AddSignal(core.Sig{
			Name:     e.Name,
			Source:   src,
			Color:    e.Color,
			HasColor: e.HasColor,
			Min:      e.Min,
			Max:      e.Max,
		})
		if err != nil {
			return nil, err
		}
	}
	if err := ch.scope.SetPollingMode(period); err != nil {
		return nil, err
	}
	return ch, nil
}

// Scope exposes the underlying scope (for rendering and control).
func (ch *Chart) Scope() *core.Scope { return ch.scope }

// ReadErrors counts polls that failed to read or parse their file.
func (ch *Chart) ReadErrors() int64 { return ch.readErrors }

// Start begins polling.
func (ch *Chart) Start() error { return ch.scope.StartPolling() }

// Stop halts polling.
func (ch *Chart) Stop() { ch.scope.Stop() }

// read performs one file poll for an entry: read, match, parse, scale.
// Failures repeat the previous sample (0 before the first success) so a
// transiently missing file does not tear the chart.
func (ch *Chart) read(e *Entry) float64 {
	prev := 0.0
	if sig := ch.scope.Signal(e.Name); sig != nil {
		prev = sig.Value()
	}
	data, err := os.ReadFile(e.Filename)
	if err != nil {
		ch.readErrors++
		return prev
	}
	m := e.Pattern.FindSubmatch(data)
	if m == nil {
		ch.readErrors++
		return prev
	}
	raw := m[0]
	if len(m) > 1 {
		raw = m[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(string(raw)), 64)
	if err != nil {
		ch.readErrors++
		return prev
	}
	return v * e.Scale
}
