package stripchart

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/glib"
)

const sampleConfig = `
# gstripchart-style configuration
begin loadavg
  filename %s
  pattern  ^(\S+)
  scale    100
  color    #ffcc00
  range    0 400
end

begin memfree
  filename %s
  pattern  MemFree:\s+(\d+)
end
`

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig(strings.NewReader(strings.ReplaceAll(
		strings.ReplaceAll(sampleConfig, "%s", "/proc/loadavg"), "%s", "/proc/meminfo")))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Entries) != 2 {
		t.Fatalf("entries = %d", len(cfg.Entries))
	}
	e := cfg.Entries[0]
	if e.Name != "loadavg" || e.Scale != 100 || !e.HasColor || e.Max != 400 {
		t.Fatalf("entry = %+v", e)
	}
	if cfg.Entries[1].Scale != 1 || cfg.Entries[1].Max != 100 {
		t.Fatal("defaults not applied")
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []string{
		"",                                    // no entries
		"begin a\nfilename f\n",               // missing end
		"end\n",                               // end without begin
		"begin a\nbegin b\n",                  // nested
		"begin a\nend\n",                      // missing filename/pattern
		"begin a\nfilename f\npattern ([\n",   // bad regex
		"begin a\nwhatkey v\nend\n",           // unknown key
		"filename f\n",                        // key outside begin
		"begin a\nfilename f\nscale xx\nend",  // bad scale
		"begin a\nfilename f\ncolor bad\nend", // bad color
		"begin\n",                             // unnamed
		"begin a\nfilename f\npattern x\nrange 1\nend", // bad range
	}
	for _, src := range cases {
		if _, err := ParseConfig(strings.NewReader(src)); err == nil {
			t.Errorf("config %q should fail", src)
		}
	}
}

func TestChartPollsFiles(t *testing.T) {
	dir := t.TempDir()
	load := writeFile(t, dir, "loadavg", "0.42 0.50 0.61 1/123 4567\n")
	mem := writeFile(t, dir, "meminfo", "MemTotal: 1000 kB\nMemFree: 250 kB\n")

	src := strings.Replace(sampleConfig, "%s", load, 1)
	src = strings.Replace(src, "%s", mem, 1)
	cfg, err := ParseConfig(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}

	vc := glib.NewVirtualClock(time.Unix(0, 0))
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	ch, err := New(loop, cfg, 200, 100, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Start(); err != nil {
		t.Fatal(err)
	}
	loop.Advance(200 * time.Millisecond)

	if v := ch.Scope().Signal("loadavg").Value(); v != 42 { // 0.42 * 100
		t.Fatalf("loadavg = %v, want 42", v)
	}
	if v := ch.Scope().Signal("memfree").Value(); v != 250 {
		t.Fatalf("memfree = %v, want 250", v)
	}
	if ch.ReadErrors() != 0 {
		t.Fatalf("read errors = %d", ch.ReadErrors())
	}

	// The chart tracks file updates, like gstripchart re-reading /proc.
	writeFile(t, dir, "loadavg", "1.25 0.50 0.61 1/123 4567\n")
	loop.Advance(100 * time.Millisecond)
	if v := ch.Scope().Signal("loadavg").Value(); v != 125 {
		t.Fatalf("updated loadavg = %v, want 125", v)
	}
	ch.Stop()
}

func TestChartHoldsOnReadFailure(t *testing.T) {
	dir := t.TempDir()
	load := writeFile(t, dir, "loadavg", "0.50\n")
	src := "begin x\n  filename " + load + "\n  pattern ^(\\S+)\nend\n"
	cfg, err := ParseConfig(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	vc := glib.NewVirtualClock(time.Unix(0, 0))
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	ch, err := New(loop, cfg, 100, 50, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ch.Start() //nolint:errcheck
	loop.Advance(100 * time.Millisecond)
	if v := ch.Scope().Signal("x").Value(); v != 0.5 {
		t.Fatalf("value = %v", v)
	}
	os.Remove(load) //nolint:errcheck
	loop.Advance(100 * time.Millisecond)
	if v := ch.Scope().Signal("x").Value(); v != 0.5 {
		t.Fatalf("value after removal = %v, want held 0.5", v)
	}
	if ch.ReadErrors() == 0 {
		t.Fatal("read errors not counted")
	}
}

func TestChartUnparseableValue(t *testing.T) {
	dir := t.TempDir()
	f := writeFile(t, dir, "weird", "not-a-number\n")
	src := "begin x\n  filename " + f + "\n  pattern ^(\\S+)\nend\n"
	cfg, err := ParseConfig(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	vc := glib.NewVirtualClock(time.Unix(0, 0))
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	ch, err := New(loop, cfg, 100, 50, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ch.Start() //nolint:errcheck
	loop.Advance(100 * time.Millisecond)
	if ch.ReadErrors() == 0 {
		t.Fatal("unparseable value should count as a read error")
	}
}

func TestLoadConfigMissingFile(t *testing.T) {
	if _, err := LoadConfig("/nonexistent/stripchart.conf"); err == nil {
		t.Fatal("missing config should error")
	}
}

func TestWholeMatchWithoutGroup(t *testing.T) {
	dir := t.TempDir()
	f := writeFile(t, dir, "v", "37\n")
	src := "begin x\n  filename " + f + "\n  pattern \\d+\nend\n"
	cfg, err := ParseConfig(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	vc := glib.NewVirtualClock(time.Unix(0, 0))
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	ch, err := New(loop, cfg, 100, 50, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ch.Start() //nolint:errcheck
	loop.Advance(60 * time.Millisecond)
	if v := ch.Scope().Signal("x").Value(); v != 37 {
		t.Fatalf("whole-match value = %v", v)
	}
}
