package stripchart

import (
	"strings"
	"testing"
)

// FuzzParseConfig checks the configuration parser never panics and that
// accepted configurations are structurally sound.
func FuzzParseConfig(f *testing.F) {
	f.Add("begin a\nfilename /proc/loadavg\npattern ^(\\S+)\nend\n")
	f.Add("begin a\nfilename f\npattern x\nscale 2\ncolor #fff\nrange 0 10\nend")
	f.Add("# only a comment\n")
	f.Add("begin\nend")
	f.Fuzz(func(t *testing.T, src string) {
		cfg, err := ParseConfig(strings.NewReader(src))
		if err != nil {
			return
		}
		if len(cfg.Entries) == 0 {
			t.Fatal("accepted config with no entries")
		}
		for _, e := range cfg.Entries {
			if e.Name == "" || e.Filename == "" || e.Pattern == nil {
				t.Fatalf("accepted incomplete entry %+v", e)
			}
		}
	})
}
