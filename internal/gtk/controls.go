package gtk

import (
	"fmt"
	"math"

	"repro/internal/draw"
	"repro/internal/geom"
)

// Slider is a labeled horizontal scale (GTK's GtkHScale), used for the
// scope's zoom and bias adjustments. Clicking inside the groove moves the
// thumb to the clicked position.
type Slider struct {
	Base
	Label    string
	Min, Max float64
	Value    float64
	OnChange func(v float64)
	// Width is the requested groove width in pixels (default 120).
	Width int
}

// NewSlider returns a slider over [minVal, maxVal] starting at value.
func NewSlider(label string, minVal, maxVal, value float64, onChange func(float64)) *Slider {
	return &Slider{Label: label, Min: minVal, Max: maxVal, Value: value, OnChange: onChange}
}

// SizeRequest implements Widget.
func (sl *Slider) SizeRequest() (int, int) {
	w := sl.Width
	if w == 0 {
		w = 120
	}
	return draw.TextWidth(sl.Label) + 6 + w + 44, draw.LineH + 8
}

// SetValue moves the thumb programmatically (clamped) and fires OnChange.
func (sl *Slider) SetValue(v float64) {
	if v < sl.Min {
		v = sl.Min
	}
	if v > sl.Max {
		v = sl.Max
	}
	sl.Value = v
	if sl.OnChange != nil {
		sl.OnChange(v)
	}
}

// groove returns the groove rectangle within the allocation.
func (sl *Slider) groove() geom.Rect {
	r := sl.Bounds()
	lx := draw.TextWidth(sl.Label) + 6
	gw := r.W - lx - 44
	if gw < 20 {
		gw = 20
	}
	return geom.XYWH(r.X+lx, r.Y+r.H/2-3, gw, 6)
}

// Draw implements Widget.
func (sl *Slider) Draw(s *draw.Surface) {
	r := sl.Bounds()
	s.FillRect(r, draw.WidgetBG)
	s.Text(r.X, r.Y+(r.H-draw.GlyphH)/2, sl.Label, draw.Black)
	g := sl.groove()
	s.FillRect(g, draw.LightGray)
	s.Bevel3D(g, false)
	span := sl.Max - sl.Min
	if span <= 0 {
		span = 1
	}
	frac := (sl.Value - sl.Min) / span
	tx := g.X + int(frac*float64(g.W-8))
	thumb := geom.XYWH(tx, g.Y-3, 8, g.H+6)
	s.FillRect(thumb, draw.WidgetBG)
	s.Bevel3D(thumb, true)
	s.TextRight(r.MaxX()-2, r.Y+(r.H-draw.GlyphH)/2, trimNum(sl.Value), draw.DarkGray)
}

// HandleEvent implements Widget.
func (sl *Slider) HandleEvent(ev Event) bool {
	g := sl.groove()
	hit := g.Inset(-4)
	if ev.Kind != MouseDown || !ev.Pos.In(hit) {
		return false
	}
	frac := float64(ev.Pos.X-g.X) / float64(g.W-1)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	sl.SetValue(sl.Min + frac*(sl.Max-sl.Min))
	return true
}

// trimNum formats a float compactly for control labels.
func trimNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// SpinBox is a numeric entry with increment/decrement arrows (GTK's
// GtkSpinButton), used for the sampling-period and delay widgets and for
// control parameters.
type SpinBox struct {
	Base
	Label    string
	Min, Max float64
	Step     float64
	Value    float64
	Unit     string
	OnChange func(v float64)
}

// NewSpinBox returns a spin box.
func NewSpinBox(label string, minVal, maxVal, step, value float64, onChange func(float64)) *SpinBox {
	if step == 0 {
		step = 1
	}
	return &SpinBox{Label: label, Min: minVal, Max: maxVal, Step: step, Value: value, OnChange: onChange}
}

// SizeRequest implements Widget.
func (sp *SpinBox) SizeRequest() (int, int) {
	return draw.TextWidth(sp.Label) + 6 + 64 + 14 + draw.TextWidth(sp.Unit) + 4, draw.LineH + 8
}

// SetValue sets the value (clamped) and fires OnChange.
func (sp *SpinBox) SetValue(v float64) {
	if v < sp.Min {
		v = sp.Min
	}
	if v > sp.Max && sp.Max > sp.Min {
		v = sp.Max
	}
	sp.Value = v
	if sp.OnChange != nil {
		sp.OnChange(v)
	}
}

// Increment steps the value up or down.
func (sp *SpinBox) Increment(up bool) {
	if up {
		sp.SetValue(sp.Value + sp.Step)
	} else {
		sp.SetValue(sp.Value - sp.Step)
	}
}

func (sp *SpinBox) entryRect() geom.Rect {
	r := sp.Bounds()
	lx := draw.TextWidth(sp.Label) + 6
	return geom.XYWH(r.X+lx, r.Y+1, 64, r.H-2)
}

func (sp *SpinBox) arrowsRect() geom.Rect {
	e := sp.entryRect()
	return geom.XYWH(e.MaxX(), e.Y, 12, e.H)
}

// Draw implements Widget.
func (sp *SpinBox) Draw(s *draw.Surface) {
	r := sp.Bounds()
	s.FillRect(r, draw.WidgetBG)
	s.Text(r.X, r.Y+(r.H-draw.GlyphH)/2, sp.Label, draw.Black)
	e := sp.entryRect()
	s.FillRect(e, draw.White)
	s.Bevel3D(e, false)
	s.TextRight(e.MaxX()-3, e.Y+(e.H-draw.GlyphH)/2, trimNum(sp.Value), draw.Black)
	a := sp.arrowsRect()
	s.FillRect(a, draw.WidgetBG)
	s.Bevel3D(a, true)
	midY := a.Y + a.H/2
	s.HLine(a.X+1, a.MaxX()-2, midY, draw.Gray)
	// Up arrow.
	cx := a.X + a.W/2
	s.Text(cx-2, a.Y+1, "^", draw.Black)
	// Down arrow (lowercase v).
	s.Text(cx-2, midY+1, "v", draw.Black)
	if sp.Unit != "" {
		s.Text(a.MaxX()+3, r.Y+(r.H-draw.GlyphH)/2, sp.Unit, draw.DarkGray)
	}
}

// HandleEvent implements Widget.
func (sp *SpinBox) HandleEvent(ev Event) bool {
	if ev.Kind != MouseDown {
		return false
	}
	a := sp.arrowsRect()
	if !ev.Pos.In(a) {
		return false
	}
	sp.Increment(ev.Pos.Y < a.Y+a.H/2)
	return true
}

// Ruler draws tick marks and numeric labels along one edge of the scope
// canvas: the paper's x ruler is sized in seconds and its y ruler spans
// 0–100.
type Ruler struct {
	Base
	Vertical bool
	// Lo and Hi are the values at the ruler's ends. For the vertical
	// ruler Lo is at the bottom.
	Lo, Hi float64
	// Ticks is the number of major ticks (default 5).
	Ticks int
	// Thickness is the requested cross-axis size (default 18 horizontal,
	// 26 vertical).
	Thickness int
}

// NewXRuler returns a horizontal ruler from lo to hi (seconds).
func NewXRuler(lo, hi float64) *Ruler { return &Ruler{Lo: lo, Hi: hi} }

// NewYRuler returns a vertical ruler from lo (bottom) to hi (top).
func NewYRuler(lo, hi float64) *Ruler { return &Ruler{Vertical: true, Lo: lo, Hi: hi} }

// SizeRequest implements Widget.
func (ru *Ruler) SizeRequest() (int, int) {
	t := ru.Thickness
	if t == 0 {
		if ru.Vertical {
			t = 26
		} else {
			t = 18
		}
	}
	if ru.Vertical {
		return t, 60
	}
	return 60, t
}

// SetRange updates the ruler ends.
func (ru *Ruler) SetRange(lo, hi float64) { ru.Lo, ru.Hi = lo, hi }

// Draw implements Widget.
func (ru *Ruler) Draw(s *draw.Surface) {
	r := ru.Bounds()
	s.FillRect(r, draw.WidgetBG)
	n := ru.Ticks
	if n < 2 {
		n = 5
	}
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		val := ru.Lo + frac*(ru.Hi-ru.Lo)
		label := trimNum(val)
		if ru.Vertical {
			y := r.MaxY() - 1 - int(frac*float64(r.H-1))
			if y < r.Y+draw.GlyphH {
				y = r.Y + draw.GlyphH
			}
			s.HLine(r.MaxX()-4, r.MaxX()-1, clampInt(y, r.Y, r.MaxY()-1), draw.Black)
			s.TextRight(r.MaxX()-6, clampInt(y-draw.GlyphH/2, r.Y, r.MaxY()-draw.GlyphH), label, draw.Black)
		} else {
			x := r.X + int(frac*float64(r.W-1))
			s.VLine(clampInt(x, r.X, r.MaxX()-1), r.Y, r.Y+4, draw.Black)
			lx := x - draw.TextWidth(label)/2
			if lx < r.X {
				lx = r.X
			}
			if lx+draw.TextWidth(label) > r.MaxX() {
				lx = r.MaxX() - draw.TextWidth(label)
			}
			s.Text(lx, r.Y+6, label, draw.Black)
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
