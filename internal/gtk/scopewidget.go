package gtk

import (
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/draw"
	"repro/internal/geom"
)

// Canvas embeds a scope's rendering area in the widget tree.
type Canvas struct {
	Base
	Scope *core.Scope
}

// SizeRequest implements Widget.
func (c *Canvas) SizeRequest() (int, int) {
	w, h := c.Scope.Size()
	return w + 2, h + 2
}

// Draw implements Widget.
func (c *Canvas) Draw(s *draw.Surface) {
	r := c.Bounds()
	s.Bevel3D(r, false)
	c.Scope.Render(s, r.Inset(1))
}

// sigRow is one per-signal control row: the signal-name button (left-click
// toggles display, right-click opens the parameters window) and the Value
// button that, when latched, continuously displays the signal value — the
// behaviour Figure 1's CWND row demonstrates.
type sigRow struct {
	Base
	sig      *core.Signal
	onParams func(*core.Signal)
}

const sigNameW = 90

// SizeRequest implements Widget.
func (sr *sigRow) SizeRequest() (int, int) {
	return sigNameW + 52 + 80, draw.LineH + 8
}

func (sr *sigRow) nameRect() geom.Rect {
	r := sr.Bounds()
	return geom.XYWH(r.X+2, r.Y+1, sigNameW, r.H-2)
}

func (sr *sigRow) valueRect() geom.Rect {
	n := sr.nameRect()
	return geom.XYWH(n.MaxX()+4, n.Y, 48, n.H)
}

// Draw implements Widget.
func (sr *sigRow) Draw(s *draw.Surface) {
	r := sr.Bounds()
	s.FillRect(r, draw.WidgetBG)

	n := sr.nameRect()
	s.FillRect(n, draw.WidgetBG)
	s.Bevel3D(n, sr.sig.Visible())
	nameCol := sr.sig.Color()
	if !sr.sig.Visible() {
		nameCol = draw.Gray
	}
	// Color chip + name, like the colored signal labels in Figure 4.
	chip := geom.XYWH(n.X+3, n.Y+3, 8, n.H-6)
	s.FillRect(chip, sr.sig.Color())
	s.StrokeRect(chip, draw.Black)
	s.Text(chip.MaxX()+4, n.Y+(n.H-draw.GlyphH)/2, sr.sig.Name(), nameCol.Blend(draw.Black, 0.4))

	v := sr.valueRect()
	s.FillRect(v, draw.WidgetBG)
	s.Bevel3D(v, !sr.sig.ShowValue())
	s.TextCentered(v.X, v.MaxX(), v.Y+(v.H-draw.GlyphH)/2, "Value", draw.Black)

	if sr.sig.ShowValue() {
		s.Text(v.MaxX()+6, v.Y+(v.H-draw.GlyphH)/2, trimNum(sr.sig.Value()), draw.Blue)
	}
}

// HandleEvent implements Widget.
func (sr *sigRow) HandleEvent(ev Event) bool {
	if ev.Kind != MouseDown {
		return false
	}
	switch {
	case ev.Pos.In(sr.nameRect()):
		if ev.Button == ButtonRight {
			if sr.onParams != nil {
				sr.onParams(sr.sig)
			}
		} else {
			sr.sig.ToggleVisible()
		}
		return true
	case ev.Pos.In(sr.valueRect()):
		sr.sig.SetShowValue(!sr.sig.ShowValue())
		return true
	}
	return false
}

// ScopeWidget is the full GtkScope widget of Figure 1: the canvas with x/y
// rulers, the zoom/bias sliders, the sampling-period and delay spin
// buttons, and one control row per signal. Changing a control updates the
// underlying scope immediately (and every GUI action has a programmatic
// counterpart on core.Scope).
type ScopeWidget struct {
	*Box

	scope  *core.Scope
	canvas *Canvas
	xruler *Ruler
	yruler *Ruler
	Zoom   *Slider
	Bias   *Slider
	Period *SpinBox
	Delay  *SpinBox

	rows    *Box
	rowsFor int

	// statusPeriod/statusPeriodStr cache the rendered polling period so
	// AppendStatusLine stays allocation-free across repaints.
	statusPeriod    time.Duration
	statusPeriodStr string

	// OnSignalParams is invoked when a signal name is right-clicked; the
	// application typically opens SignalParamsWindow for the signal.
	OnSignalParams func(*core.Signal)
}

// NewScopeWidget builds the widget tree for scope.
func NewScopeWidget(scope *core.Scope) *ScopeWidget {
	sw := &ScopeWidget{scope: scope}
	sw.canvas = &Canvas{Scope: scope}

	sw.yruler = NewYRuler(0, 100)
	sw.xruler = NewXRuler(0, sw.sweepSeconds())
	sw.xruler.Thickness = 18

	top := NewHBox(0)
	top.Add(sw.yruler)
	top.Add(sw.canvas)

	xr := NewHBox(0)
	xr.Add(&Spacer{W: 26, H: 1}) // align under the canvas, past the y ruler
	sw.xruler.Ticks = 6
	xr.AddExpand(sw.xruler)

	sw.Zoom = NewSlider("Zoom", 0.125, 8, scope.Zoom(), func(v float64) { scope.SetZoom(v); sw.updateRuler() })
	sw.Bias = NewSlider("Bias", -100, 100, scope.Bias(), func(v float64) { scope.SetBias(v) })
	sliders := NewHBox(10)
	sliders.Add(sw.Zoom)
	sliders.Add(sw.Bias)

	sw.Period = NewSpinBox("Period", 10, 5000, 10, float64(scope.Period().Milliseconds()), func(v float64) {
		setPeriod(scope, time.Duration(v)*time.Millisecond)
		sw.updateRuler()
	})
	sw.Period.Unit = "ms"
	sw.Delay = NewSpinBox("Delay", 0, 60000, 50, float64(scope.Delay().Milliseconds()), func(v float64) {
		scope.SetDelay(time.Duration(v) * time.Millisecond)
	})
	sw.Delay.Unit = "ms"
	spins := NewHBox(10)
	spins.Add(sw.Period)
	spins.Add(sw.Delay)

	sw.rows = NewVBox(1)

	root := NewVBox(2)
	root.Padding = 3
	root.Add(top)
	root.Add(xr)
	root.Add(sliders)
	root.Add(spins)
	root.Add(sw.rows)
	sw.Box = root

	sw.RefreshSignals()
	return sw
}

// Scope returns the underlying scope.
func (sw *ScopeWidget) Scope() *core.Scope { return sw.scope }

// setPeriod applies a polling-period change, restarting acquisition when
// the scope is running (the GUI's period widget works live).
func setPeriod(scope *core.Scope, p time.Duration) {
	if scope.Mode() == core.ModePolling {
		running := scope.Running()
		if running {
			scope.Stop()
		}
		scope.SetPollingMode(p) //nolint:errcheck // p>0 and scope stopped
		if running {
			scope.StartPolling() //nolint:errcheck // mode is polling
		}
	}
}

// sweepSeconds returns the canvas width expressed in seconds of sweep.
func (sw *ScopeWidget) sweepSeconds() float64 {
	w, _ := sw.scope.Size()
	return float64(w) / sw.scope.Zoom() * sw.scope.Period().Seconds()
}

func (sw *ScopeWidget) updateRuler() {
	sw.xruler.SetRange(0, sw.sweepSeconds())
}

// RefreshSignals rebuilds the per-signal rows after dynamic signal
// addition or removal.
func (sw *ScopeWidget) RefreshSignals() {
	sigs := sw.scope.Signals()
	sw.rows.children = sw.rows.children[:0]
	for _, s := range sigs {
		row := &sigRow{sig: s, onParams: func(s *core.Signal) {
			if sw.OnSignalParams != nil {
				sw.OnSignalParams(s)
			}
		}}
		sw.rows.Add(row)
	}
	sw.rowsFor = len(sigs)
}

// Draw implements Widget, refreshing the signal rows and x ruler before
// painting.
func (sw *ScopeWidget) Draw(s *draw.Surface) {
	if sw.rowsFor != len(sw.scope.Signals()) {
		sw.RefreshSignals()
		sw.Box.Allocate(sw.Bounds())
	}
	sw.updateRuler()
	sw.Box.Draw(s)
}

// Window wraps the widget in a titled top-level window named after the
// scope, the way gtk_scope_new realizes one on screen.
func (sw *ScopeWidget) Window() *Window {
	title := sw.scope.Name()
	if title == "" {
		title = "gscope"
	}
	return NewWindow(title, sw)
}

// RenderFrame lays out and renders a complete window screenshot.
func (sw *ScopeWidget) RenderFrame() *draw.Surface {
	return sw.Window().Render()
}

// signalRowAt exposes row geometry for tests: it returns the center of the
// name button of row i after layout.
func (sw *ScopeWidget) signalRowAt(i int) (geom.Pt, bool) {
	kids := sw.rows.Children()
	if i < 0 || i >= len(kids) {
		return geom.Pt{}, false
	}
	row, ok := kids[i].(*sigRow)
	if !ok {
		return geom.Pt{}, false
	}
	n := row.nameRect()
	return geom.Pt{X: n.X + n.W/2, Y: n.Y + n.H/2}, true
}

// NameButtonCenter returns the window coordinates of signal i's name
// button; it is used by tests and by demo scripts that simulate clicks.
func (sw *ScopeWidget) NameButtonCenter(win *Window, i int) (geom.Pt, bool) {
	win.Layout()
	return sw.signalRowAt(i)
}

// ValueButtonCenter returns the window coordinates of signal i's Value
// button after layout.
func (sw *ScopeWidget) ValueButtonCenter(win *Window, i int) (geom.Pt, bool) {
	win.Layout()
	kids := sw.rows.Children()
	if i < 0 || i >= len(kids) {
		return geom.Pt{}, false
	}
	row, ok := kids[i].(*sigRow)
	if !ok {
		return geom.Pt{}, false
	}
	v := row.valueRect()
	return geom.Pt{X: v.X + v.W/2, Y: v.Y + v.H/2}, true
}

// StatusLine formats a one-line summary used by terminal demos.
func (sw *ScopeWidget) StatusLine() string {
	return string(sw.AppendStatusLine(nil))
}

// AppendStatusLine appends the StatusLine text to dst and returns the
// extended slice, allocating nothing beyond dst's growth in steady state —
// gscoped's -ansi repaint rebuilds it every second into a reused buffer.
// The period's rendering is cached because time.Duration can only be
// stringified through an allocation; it re-renders only when the period
// changes.
func (sw *ScopeWidget) AppendStatusLine(dst []byte) []byte {
	st := sw.scope.Stats()
	if p := sw.scope.Period(); p != sw.statusPeriod || sw.statusPeriodStr == "" {
		sw.statusPeriod, sw.statusPeriodStr = p, p.String()
	}
	dst = append(dst, sw.scope.Name()...)
	dst = append(dst, ": mode="...)
	dst = append(dst, sw.scope.Mode().String()...)
	dst = append(dst, " period="...)
	dst = append(dst, sw.statusPeriodStr...)
	dst = append(dst, " polls="...)
	dst = strconv.AppendInt(dst, st.Polls, 10)
	dst = append(dst, " lost="...)
	dst = strconv.AppendInt(dst, st.LostTicks, 10)
	return dst
}
