package gtk

import (
	"repro/internal/draw"
	"repro/internal/geom"
)

// Window is a top-level widget with a title bar. It owns a child widget,
// lays it out, renders the whole tree to a Surface, and routes mouse events
// into the tree — the stand-in for an X11 window.
type Window struct {
	Title string
	child Widget

	// explicit size; 0 means size to the child's request.
	w, h int
}

const titleBarH = 16

// NewWindow wraps child in a window.
func NewWindow(title string, child Widget) *Window {
	return &Window{Title: title, child: child}
}

// SetSize forces the window content area to w×h pixels.
func (win *Window) SetSize(w, h int) { win.w, win.h = w, h }

// Child returns the content widget.
func (win *Window) Child() Widget { return win.child }

// Size returns the full window size including decoration.
func (win *Window) Size() (int, int) {
	cw, ch := win.child.SizeRequest()
	if win.w > 0 {
		cw = win.w
	}
	if win.h > 0 {
		ch = win.h
	}
	return cw + 4, ch + titleBarH + 4
}

// Layout allocates the widget tree for the current size.
func (win *Window) Layout() {
	w, h := win.Size()
	win.child.Allocate(geom.XYWH(2, titleBarH+2, w-4, h-titleBarH-4))
}

// Render lays out and draws the window into a fresh surface.
func (win *Window) Render() *draw.Surface {
	w, h := win.Size()
	s := draw.NewSurface(w, h)
	win.Layout()
	// Frame and title bar in the classic sawfish/GTK style of the paper's
	// screenshots.
	s.Fill(draw.WidgetBG)
	s.StrokeRect(geom.XYWH(0, 0, w, h), draw.Black)
	bar := geom.XYWH(1, 1, w-2, titleBarH)
	s.FillRect(bar, draw.RGB{R: 70, G: 90, B: 140})
	s.Text(6, 1+(titleBarH-draw.GlyphH)/2, win.Title, draw.White)
	// Close box.
	cb := geom.XYWH(w-14, 3, 11, 11)
	s.FillRect(cb, draw.WidgetBG)
	s.Bevel3D(cb, true)
	s.Text(cb.X+3, cb.Y+2, "x", draw.Black)

	win.child.Draw(s)
	return s
}

// Click dispatches a mouse press at window coordinates into the tree. It
// returns true if any widget consumed it.
func (win *Window) Click(x, y, button int) bool {
	win.Layout()
	return win.child.HandleEvent(Event{Kind: MouseDown, Button: button, Pos: geom.Pt{X: x, Y: y}})
}
