package gtk

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/draw"
	"repro/internal/geom"
)

// SignalParamsWindow builds the per-signal parameter dialog of Figure 2,
// reached by right-clicking a signal name: color, displayed min/max, line
// mode, hidden flag and the low-pass filter α, all wired live to the
// signal.
func SignalParamsWindow(sig *core.Signal) *Window {
	root := NewVBox(3)
	root.Padding = 6

	title := NewLabel("Signal: " + sig.Name())
	title.Bold = true
	root.Add(title)

	root.Add(&colorRow{sig: sig})

	lo, hi := sig.Range()
	minSpin := NewSpinBox("Min", -1e9, 1e9, 1, lo, nil)
	maxSpin := NewSpinBox("Max", -1e9, 1e9, 1, hi, nil)
	minSpin.OnChange = func(v float64) { _, h := sig.Range(); sig.SetRange(v, h) }
	maxSpin.OnChange = func(v float64) { l, _ := sig.Range(); sig.SetRange(l, v) }
	row := NewHBox(8)
	row.Add(minSpin)
	row.Add(maxSpin)
	root.Add(row)

	lineBtn := NewButton("Line: "+sig.Line().String(), nil)
	lineBtn.OnClick = func(int) {
		next := (sig.Line() + 1) % 3
		sig.SetLine(next)
		lineBtn.Text = "Line: " + next.String()
	}
	hidden := NewToggle("Hidden", func(on bool) { sig.SetVisible(!on) })
	hidden.On = !sig.Visible()
	hidden.Pressed = hidden.On
	row2 := NewHBox(8)
	row2.Add(lineBtn)
	row2.Add(hidden)
	root.Add(row2)

	filter := NewSlider("Filter α", 0, 1, sig.FilterAlpha(), sig.SetFilterAlpha)
	root.Add(filter)

	return NewWindow("Signal Parameters", root)
}

// colorRow shows the signal's trace color swatch and hex value.
type colorRow struct {
	Base
	sig *core.Signal
}

// SizeRequest implements Widget.
func (cr *colorRow) SizeRequest() (int, int) { return 160, draw.LineH + 6 }

// Draw implements Widget.
func (cr *colorRow) Draw(s *draw.Surface) {
	r := cr.Bounds()
	s.FillRect(r, draw.WidgetBG)
	s.Text(r.X, r.Y+(r.H-draw.GlyphH)/2, "Color", draw.Black)
	sw := geom.XYWH(r.X+50, r.Y+2, 28, r.H-4)
	s.FillRect(sw, cr.sig.Color())
	s.StrokeRect(sw, draw.Black)
	s.Text(sw.MaxX()+6, r.Y+(r.H-draw.GlyphH)/2, cr.sig.Color().String(), draw.DarkGray)
}

// HandleEvent cycles the color through the palette on click.
func (cr *colorRow) HandleEvent(ev Event) bool {
	if ev.Kind != MouseDown || !ev.Pos.In(cr.Bounds()) {
		return false
	}
	cur := cr.sig.Color()
	for i, c := range draw.Palette {
		if c == cur {
			cr.sig.SetColor(draw.PaletteColor(i + 1))
			return true
		}
	}
	cr.sig.SetColor(draw.PaletteColor(0))
	return true
}

// ControlParamsWindow builds the application/control parameters window of
// Figure 3: each registered parameter gets a row with its name and a spin
// box that reads and writes it. Signals can only be read; parameters can
// also be written (§3.2), which is how the GUI modifies application
// behaviour at run time.
func ControlParamsWindow(title string, params *core.ParamSet) *Window {
	root := NewVBox(3)
	root.Padding = 6
	head := NewLabel(title)
	head.Bold = true
	root.Add(head)

	for _, p := range params.List() {
		p := p
		step := p.Step
		if step == 0 {
			step = 1
		}
		lo, hi := p.Min, p.Max
		if !p.Bounded() {
			lo, hi = -1e12, 1e12
		}
		spin := NewSpinBox(p.Name, lo, hi, step, p.Get(), nil)
		if p.Set != nil {
			name := p.Name
			spin.OnChange = func(v float64) {
				params.Set(name, v) //nolint:errcheck // registry owns the param
			}
		}
		root.Add(spin)
	}
	if len(params.List()) == 0 {
		root.Add(NewLabel("(no parameters)"))
	}
	return NewWindow("Application Parameters", root)
}

// ParamsSummary formats parameters as "name=value" pairs for logs.
func ParamsSummary(params *core.ParamSet) string {
	out := ""
	for i, p := range params.List() {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%s", p.Name, trimNum(p.Get()))
	}
	return out
}
