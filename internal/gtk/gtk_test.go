package gtk

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/draw"
	"repro/internal/geom"
	"repro/internal/glib"
)

func scopeRig(t *testing.T) (*core.Scope, *glib.Loop) {
	t.Helper()
	vc := glib.NewVirtualClock(time.Unix(100, 0))
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	sc := core.New(loop, "gtk-test", 200, 100)
	return sc, loop
}

func TestLabelSizeAndDraw(t *testing.T) {
	l := NewLabel("Hello")
	w, h := l.SizeRequest()
	if w <= 0 || h <= 0 {
		t.Fatal("bad size request")
	}
	s := draw.NewSurface(w, h)
	l.Allocate(geom.XYWH(0, 0, w, h))
	l.Draw(s)
	found := false
	for _, p := range s.Pix {
		if p == draw.Black {
			found = true
		}
	}
	if !found {
		t.Fatal("label rendered no ink")
	}
}

func TestButtonClick(t *testing.T) {
	var clickedWith int
	b := NewButton("Go", func(btn int) { clickedWith = btn })
	b.Allocate(geom.XYWH(10, 10, 60, 20))
	if b.HandleEvent(Event{Kind: MouseDown, Button: ButtonLeft, Pos: geom.Pt{X: 0, Y: 0}}) {
		t.Fatal("outside click consumed")
	}
	if !b.HandleEvent(Event{Kind: MouseDown, Button: ButtonRight, Pos: geom.Pt{X: 20, Y: 15}}) {
		t.Fatal("inside click not consumed")
	}
	if clickedWith != ButtonRight {
		t.Fatalf("handler got button %d", clickedWith)
	}
	if b.Clicks() != 1 {
		t.Fatalf("Clicks = %d", b.Clicks())
	}
}

func TestToggleLatches(t *testing.T) {
	var state bool
	tg := NewToggle("T", func(on bool) { state = on })
	tg.Allocate(geom.XYWH(0, 0, 40, 20))
	tg.HandleEvent(Event{Kind: MouseDown, Button: ButtonLeft, Pos: geom.Pt{X: 5, Y: 5}})
	if !state || !tg.On || !tg.Pressed {
		t.Fatal("toggle did not latch on")
	}
	tg.HandleEvent(Event{Kind: MouseDown, Button: ButtonLeft, Pos: geom.Pt{X: 5, Y: 5}})
	if state || tg.On {
		t.Fatal("toggle did not latch off")
	}
}

func TestBoxLayoutVertical(t *testing.T) {
	a, b := NewLabel("a"), NewLabel("b")
	box := NewVBox(4)
	box.Add(a)
	box.Add(b)
	w, h := box.SizeRequest()
	box.Allocate(geom.XYWH(0, 0, w, h))
	if a.Bounds().Y >= b.Bounds().Y {
		t.Fatal("vertical order wrong")
	}
	if b.Bounds().Y < a.Bounds().MaxY()+4 {
		t.Fatal("spacing not applied")
	}
}

func TestBoxLayoutHorizontalExpand(t *testing.T) {
	a, b := NewLabel("a"), NewLabel("bb")
	box := NewHBox(2)
	box.Add(a)
	box.AddExpand(b)
	box.Allocate(geom.XYWH(0, 0, 300, 20))
	if b.Bounds().W <= 50 {
		t.Fatalf("expanding child width %d", b.Bounds().W)
	}
	if a.Bounds().W > 50 {
		t.Fatal("fixed child expanded")
	}
}

func TestSliderClickSetsValue(t *testing.T) {
	var got float64
	sl := NewSlider("Zoom", 0, 10, 5, func(v float64) { got = v })
	w, h := sl.SizeRequest()
	sl.Allocate(geom.XYWH(0, 0, w, h))
	g := sl.groove()
	// Click the far right of the groove.
	sl.HandleEvent(Event{Kind: MouseDown, Button: ButtonLeft, Pos: geom.Pt{X: g.MaxX() - 1, Y: g.Y + 2}})
	if got < 9.5 {
		t.Fatalf("right-edge click set %v", got)
	}
	sl.HandleEvent(Event{Kind: MouseDown, Button: ButtonLeft, Pos: geom.Pt{X: g.X, Y: g.Y + 2}})
	if sl.Value != 0 {
		t.Fatalf("left-edge click set %v", sl.Value)
	}
}

func TestSliderSetValueClamps(t *testing.T) {
	sl := NewSlider("x", 0, 10, 5, nil)
	sl.SetValue(99)
	if sl.Value != 10 {
		t.Fatal("slider should clamp high")
	}
	sl.SetValue(-1)
	if sl.Value != 0 {
		t.Fatal("slider should clamp low")
	}
}

func TestSpinBoxArrows(t *testing.T) {
	var got float64
	sp := NewSpinBox("Period", 10, 100, 10, 50, func(v float64) { got = v })
	w, h := sp.SizeRequest()
	sp.Allocate(geom.XYWH(0, 0, w, h))
	a := sp.arrowsRect()
	sp.HandleEvent(Event{Kind: MouseDown, Button: ButtonLeft, Pos: geom.Pt{X: a.X + 2, Y: a.Y + 1}})
	if got != 60 {
		t.Fatalf("up arrow → %v", got)
	}
	sp.HandleEvent(Event{Kind: MouseDown, Button: ButtonLeft, Pos: geom.Pt{X: a.X + 2, Y: a.MaxY() - 2}})
	if got != 50 {
		t.Fatalf("down arrow → %v", got)
	}
	sp.SetValue(5)
	if sp.Value != 10 {
		t.Fatal("spin should clamp to min")
	}
}

func TestRulerDraws(t *testing.T) {
	for _, vertical := range []bool{false, true} {
		ru := &Ruler{Vertical: vertical, Lo: 0, Hi: 100}
		w, h := ru.SizeRequest()
		s := draw.NewSurface(w+60, h+60)
		ru.Allocate(geom.XYWH(0, 0, w+60, h+60))
		ru.Draw(s)
		ink := 0
		for _, p := range s.Pix {
			if p == draw.Black {
				ink++
			}
		}
		if ink < 10 {
			t.Fatalf("ruler (vertical=%v) rendered %d ink px", vertical, ink)
		}
	}
}

func TestScopeWidgetRenderFrame(t *testing.T) {
	sc, _ := scopeRig(t)
	var v core.IntVar
	sc.AddSignal(core.Sig{Name: "elephants", Source: &v, Max: 40}) //nolint:errcheck
	sc.AddSignal(core.Sig{Name: "CWND", Source: &v, Max: 40})      //nolint:errcheck
	sw := NewScopeWidget(sc)
	frame := sw.RenderFrame()
	if frame.W < 200 || frame.H < 150 {
		t.Fatalf("frame size %dx%d", frame.W, frame.H)
	}
	// The canvas background must appear.
	found := false
	for _, p := range frame.Pix {
		if p == draw.ScopeBG {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("scope canvas missing from frame")
	}
}

func TestScopeWidgetLeftClickTogglesSignal(t *testing.T) {
	sc, _ := scopeRig(t)
	var v core.IntVar
	sig, _ := sc.AddSignal(core.Sig{Name: "CWND", Source: &v})
	sw := NewScopeWidget(sc)
	win := sw.Window()
	pt, ok := sw.NameButtonCenter(win, 0)
	if !ok {
		t.Fatal("no name button")
	}
	if !win.Click(pt.X, pt.Y, ButtonLeft) {
		t.Fatal("click not consumed")
	}
	if sig.Visible() {
		t.Fatal("left click should hide the signal")
	}
	win.Click(pt.X, pt.Y, ButtonLeft)
	if !sig.Visible() {
		t.Fatal("second click should show it again")
	}
}

func TestScopeWidgetRightClickOpensParams(t *testing.T) {
	sc, _ := scopeRig(t)
	var v core.IntVar
	sc.AddSignal(core.Sig{Name: "CWND", Source: &v}) //nolint:errcheck
	sw := NewScopeWidget(sc)
	var opened *core.Signal
	sw.OnSignalParams = func(s *core.Signal) { opened = s }
	win := sw.Window()
	pt, _ := sw.NameButtonCenter(win, 0)
	win.Click(pt.X, pt.Y, ButtonRight)
	if opened == nil || opened.Name() != "CWND" {
		t.Fatal("right click did not open params")
	}
}

func TestScopeWidgetValueButton(t *testing.T) {
	sc, _ := scopeRig(t)
	var v core.IntVar
	sig, _ := sc.AddSignal(core.Sig{Name: "CWND", Source: &v})
	sw := NewScopeWidget(sc)
	win := sw.Window()
	pt, ok := sw.ValueButtonCenter(win, 0)
	if !ok {
		t.Fatal("no value button")
	}
	win.Click(pt.X, pt.Y, ButtonLeft)
	if !sig.ShowValue() {
		t.Fatal("Value button should latch value display")
	}
}

func TestScopeWidgetZoomControlDrivesScope(t *testing.T) {
	sc, _ := scopeRig(t)
	var v core.IntVar
	sc.AddSignal(core.Sig{Name: "x", Source: &v}) //nolint:errcheck
	sw := NewScopeWidget(sc)
	sw.Zoom.SetValue(4)
	if sc.Zoom() != 4 {
		t.Fatalf("scope zoom = %v", sc.Zoom())
	}
	sw.Bias.SetValue(-20)
	if sc.Bias() != -20 {
		t.Fatalf("scope bias = %v", sc.Bias())
	}
	sw.Delay.SetValue(150)
	if sc.Delay() != 150*time.Millisecond {
		t.Fatalf("scope delay = %v", sc.Delay())
	}
}

func TestScopeWidgetPeriodChangeWhileRunning(t *testing.T) {
	sc, loop := scopeRig(t)
	var v core.IntVar
	sc.AddSignal(core.Sig{Name: "x", Source: &v}) //nolint:errcheck
	sc.SetPollingMode(50 * time.Millisecond)      //nolint:errcheck
	if err := sc.StartPolling(); err != nil {
		t.Fatal(err)
	}
	sw := NewScopeWidget(sc)
	sw.Period.SetValue(100)
	if sc.Period() != 100*time.Millisecond {
		t.Fatalf("period = %v", sc.Period())
	}
	if !sc.Running() {
		t.Fatal("scope should still be running after period change")
	}
	before := sc.Stats().Polls
	loop.Advance(500 * time.Millisecond)
	after := sc.Stats().Polls
	if after-before != 5 {
		t.Fatalf("polled %d times in 500ms at 100ms period", after-before)
	}
}

func TestScopeWidgetRefreshOnDynamicSignals(t *testing.T) {
	sc, _ := scopeRig(t)
	var v core.IntVar
	sc.AddSignal(core.Sig{Name: "a", Source: &v}) //nolint:errcheck
	sw := NewScopeWidget(sc)
	sw.RenderFrame()
	sc.AddSignal(core.Sig{Name: "b", Source: &v}) //nolint:errcheck
	sw.RenderFrame()                              // must pick up the new row
	win := sw.Window()
	if _, ok := sw.NameButtonCenter(win, 1); !ok {
		t.Fatal("second signal row missing after dynamic add")
	}
}

func TestSignalParamsWindow(t *testing.T) {
	sc, _ := scopeRig(t)
	var v core.IntVar
	sig, _ := sc.AddSignal(core.Sig{Name: "CWND", Source: &v})
	win := SignalParamsWindow(sig)
	s := win.Render()
	if s.W < 100 || s.H < 60 {
		t.Fatalf("window too small: %dx%d", s.W, s.H)
	}
}

func TestControlParamsWindowSetsValues(t *testing.T) {
	ps := core.NewParamSet()
	var n core.IntVar
	n.Store(8)
	ps.Add(core.IntParam("elephants", &n, 0, 40)) //nolint:errcheck
	win := ControlParamsWindow("mxtraf", ps)
	win.Render()
	// Find the spin box and click its up arrow.
	root := win.Child().(*Box)
	var spin *SpinBox
	for _, c := range root.Children() {
		if sp, ok := c.(*SpinBox); ok {
			spin = sp
		}
	}
	if spin == nil {
		t.Fatal("no spin box for parameter")
	}
	a := spin.arrowsRect()
	win.Click(a.X+2, a.Y+1, ButtonLeft)
	if n.Load() != 9 {
		t.Fatalf("param after up-click = %d, want 9", n.Load())
	}
}

func TestControlParamsWindowEmpty(t *testing.T) {
	ps := core.NewParamSet()
	win := ControlParamsWindow("empty", ps)
	if s := win.Render(); s.W <= 0 {
		t.Fatal("empty params window failed to render")
	}
}

func TestParamsSummary(t *testing.T) {
	ps := core.NewParamSet()
	var n core.IntVar
	n.Store(8)
	ps.Add(core.IntParam("elephants", &n, 0, 40)) //nolint:errcheck
	if got := ParamsSummary(ps); got != "elephants=8" {
		t.Fatalf("summary = %q", got)
	}
}

func TestWindowCloseBoxAndTitle(t *testing.T) {
	win := NewWindow("Test Window", NewLabel("body"))
	s := win.Render()
	// Title bar pixels present.
	blue := draw.RGB{R: 70, G: 90, B: 140}
	found := 0
	for _, p := range s.Pix {
		if p == blue {
			found++
		}
	}
	if found < 50 {
		t.Fatal("title bar missing")
	}
}

func TestColorRowCyclesPalette(t *testing.T) {
	sc, _ := scopeRig(t)
	var v core.IntVar
	sig, _ := sc.AddSignal(core.Sig{Name: "x", Source: &v})
	before := sig.Color()
	cr := &colorRow{sig: sig}
	cr.Allocate(geom.XYWH(0, 0, 160, 16))
	cr.HandleEvent(Event{Kind: MouseDown, Button: ButtonLeft, Pos: geom.Pt{X: 5, Y: 5}})
	if sig.Color() == before {
		t.Fatal("color did not cycle")
	}
}
