// Package gtk is a small retained-mode widget toolkit standing in for the
// GTK+/Gnome layer the original gscope was written against. It provides
// just enough machinery to reproduce the paper's GUI faithfully: the
// GtkScope widget with canvas, rulers, zoom/bias/period/delay controls and
// per-signal button rows (Figures 1, 4, 5), the signal-parameters window
// (Figure 2) and the control-parameters window (Figure 3), with mouse
// event routing (left-click toggles a signal, right-click opens its
// parameter window) and rendering onto a draw.Surface.
package gtk

import (
	"repro/internal/draw"
	"repro/internal/geom"
)

// EventKind distinguishes input events.
type EventKind int

// Event kinds.
const (
	MouseDown EventKind = iota
	MouseUp
)

// Mouse buttons, numbered as in X11: 1 is left, 3 is right.
const (
	ButtonLeft  = 1
	ButtonRight = 3
)

// Event is one input event in window coordinates.
type Event struct {
	Kind   EventKind
	Button int
	Pos    geom.Pt
}

// Widget is anything that can be laid out, drawn and clicked.
type Widget interface {
	// SizeRequest returns the preferred size in pixels.
	SizeRequest() (w, h int)
	// Allocate assigns the widget its on-screen rectangle.
	Allocate(r geom.Rect)
	// Bounds returns the allocated rectangle.
	Bounds() geom.Rect
	// Draw renders the widget into s.
	Draw(s *draw.Surface)
	// HandleEvent offers an event; the widget returns true if consumed.
	HandleEvent(ev Event) bool
}

// Base provides allocation bookkeeping for widget implementations.
type Base struct {
	rect geom.Rect
}

// Allocate implements Widget.
func (b *Base) Allocate(r geom.Rect) { b.rect = r }

// Bounds implements Widget.
func (b *Base) Bounds() geom.Rect { return b.rect }

// HandleEvent implements Widget with a no-op.
func (b *Base) HandleEvent(Event) bool { return false }

// Label is a static line of text.
type Label struct {
	Base
	Text  string
	Color draw.RGB
	// Bold draws the text twice with a 1px offset, approximating a bold
	// face.
	Bold bool
}

// NewLabel returns a black label.
func NewLabel(text string) *Label { return &Label{Text: text, Color: draw.Black} }

// SizeRequest implements Widget.
func (l *Label) SizeRequest() (int, int) { return draw.TextWidth(l.Text) + 4, draw.LineH + 2 }

// Draw implements Widget.
func (l *Label) Draw(s *draw.Surface) {
	r := l.Bounds()
	y := r.Y + (r.H-draw.GlyphH)/2
	s.Text(r.X+2, y, l.Text, l.Color)
	if l.Bold {
		s.Text(r.X+3, y, l.Text, l.Color)
	}
}

// Button is a push button with an optional per-mouse-button click handler.
type Button struct {
	Base
	Text  string
	Color draw.RGB // text color; zero value renders black
	// Pressed gives the button a sunken look (used for latched toggles).
	Pressed bool
	// OnClick receives the mouse button number (1 left, 3 right).
	OnClick func(button int)

	clicks int
}

// NewButton returns a button with a click handler.
func NewButton(text string, onClick func(button int)) *Button {
	return &Button{Text: text, OnClick: onClick}
}

// Clicks returns how many times the button has been activated.
func (b *Button) Clicks() int { return b.clicks }

// SizeRequest implements Widget.
func (b *Button) SizeRequest() (int, int) { return draw.TextWidth(b.Text) + 12, draw.LineH + 6 }

// Draw implements Widget.
func (b *Button) Draw(s *draw.Surface) {
	r := b.Bounds()
	s.FillRect(r, draw.WidgetBG)
	s.Bevel3D(r, !b.Pressed)
	c := b.Color
	if (c == draw.RGB{}) {
		c = draw.Black
	}
	s.TextCentered(r.X, r.MaxX(), r.Y+(r.H-draw.GlyphH)/2, b.Text, c)
}

// HandleEvent implements Widget.
func (b *Button) HandleEvent(ev Event) bool {
	if ev.Kind != MouseDown || !ev.Pos.In(b.Bounds()) {
		return false
	}
	b.clicks++
	if b.OnClick != nil {
		b.OnClick(ev.Button)
	}
	return true
}

// Toggle is a latching button.
type Toggle struct {
	Button
	On       bool
	OnToggle func(on bool)
}

// NewToggle returns a toggle with a state-change handler.
func NewToggle(text string, onToggle func(on bool)) *Toggle {
	t := &Toggle{OnToggle: onToggle}
	t.Text = text
	t.OnClick = func(int) {
		t.On = !t.On
		t.Pressed = t.On
		if t.OnToggle != nil {
			t.OnToggle(t.On)
		}
	}
	return t
}

// Spacer is fixed empty space.
type Spacer struct {
	Base
	W, H int
}

// SizeRequest implements Widget.
func (sp *Spacer) SizeRequest() (int, int) { return sp.W, sp.H }

// Draw implements Widget.
func (sp *Spacer) Draw(*draw.Surface) {}

// Box lays children out in a row or column, GTK-style: each child gets its
// requested size along the box axis, the full extent across it, and any
// leftover space goes to children marked as expanding.
type Box struct {
	Base
	Vertical bool
	Spacing  int
	Padding  int

	children []boxChild
}

type boxChild struct {
	w      Widget
	expand bool
}

// NewHBox returns a horizontal box.
func NewHBox(spacing int) *Box { return &Box{Spacing: spacing} }

// NewVBox returns a vertical box.
func NewVBox(spacing int) *Box { return &Box{Vertical: true, Spacing: spacing} }

// Add appends a fixed-size child.
func (b *Box) Add(w Widget) *Box {
	b.children = append(b.children, boxChild{w: w})
	return b
}

// AddExpand appends a child that absorbs leftover space.
func (b *Box) AddExpand(w Widget) *Box {
	b.children = append(b.children, boxChild{w: w, expand: true})
	return b
}

// Children returns the child widgets in order.
func (b *Box) Children() []Widget {
	out := make([]Widget, len(b.children))
	for i, c := range b.children {
		out[i] = c.w
	}
	return out
}

// SizeRequest implements Widget.
func (b *Box) SizeRequest() (int, int) {
	var main, cross int
	for i, c := range b.children {
		w, h := c.w.SizeRequest()
		if b.Vertical {
			main += h
			if w > cross {
				cross = w
			}
		} else {
			main += w
			if h > cross {
				cross = h
			}
		}
		if i > 0 {
			main += b.Spacing
		}
	}
	main += 2 * b.Padding
	cross += 2 * b.Padding
	if b.Vertical {
		return cross, main
	}
	return main, cross
}

// Allocate implements Widget, distributing space among children.
func (b *Box) Allocate(r geom.Rect) {
	b.Base.Allocate(r)
	inner := r.Inset(b.Padding)
	reqMain := 0
	expanders := 0
	for i, c := range b.children {
		w, h := c.w.SizeRequest()
		if b.Vertical {
			reqMain += h
		} else {
			reqMain += w
		}
		if i > 0 {
			reqMain += b.Spacing
		}
		if c.expand {
			expanders++
		}
	}
	avail := inner.H
	if !b.Vertical {
		avail = inner.W
	}
	extra := avail - reqMain
	if extra < 0 {
		extra = 0
	}
	perExpand := 0
	if expanders > 0 {
		perExpand = extra / expanders
	}
	pos := inner.Y
	if !b.Vertical {
		pos = inner.X
	}
	for _, c := range b.children {
		cw, ch := c.w.SizeRequest()
		if b.Vertical {
			h := ch
			if c.expand {
				h += perExpand
			}
			c.w.Allocate(geom.XYWH(inner.X, pos, inner.W, h))
			pos += h + b.Spacing
		} else {
			w := cw
			if c.expand {
				w += perExpand
			}
			c.w.Allocate(geom.XYWH(pos, inner.Y, w, inner.H))
			pos += w + b.Spacing
		}
	}
}

// Draw implements Widget.
func (b *Box) Draw(s *draw.Surface) {
	for _, c := range b.children {
		c.w.Draw(s)
	}
}

// HandleEvent implements Widget, offering the event to children in order.
func (b *Box) HandleEvent(ev Event) bool {
	for _, c := range b.children {
		if c.w.HandleEvent(ev) {
			return true
		}
	}
	return false
}
