package draw

import (
	"fmt"
	"image"
	"image/color"
	"image/gif"
	"io"
	"os"
)

// Animated GIF export. One of gscope's design goals is "building
// compelling software demos" (§1); without an X display, an animation of
// successive scope frames is the shareable equivalent of watching the
// live widget.

// gifPalette builds a palette from the colors actually used by the
// frames, capped at 256 (scope frames use a few dozen).
func gifPalette(frames []*Surface) color.Palette {
	seen := make(map[RGB]bool)
	pal := color.Palette{}
	for _, f := range frames {
		for _, p := range f.Pix {
			if !seen[p] {
				seen[p] = true
				if len(pal) < 256 {
					pal = append(pal, p.RGBA())
				}
			}
		}
		if len(pal) >= 256 {
			break
		}
	}
	if len(pal) == 0 {
		pal = color.Palette{color.Black}
	}
	return pal
}

// EncodeGIF writes frames as an animated GIF with the given per-frame
// delay. All frames must share the first frame's dimensions.
func EncodeGIF(w io.Writer, frames []*Surface, delay int) error {
	if len(frames) == 0 {
		return fmt.Errorf("draw: no frames")
	}
	if delay < 1 {
		delay = 1
	}
	w0, h0 := frames[0].W, frames[0].H
	pal := gifPalette(frames)
	anim := &gif.GIF{LoopCount: 0}
	// Index cache: palette lookups dominate encoding time otherwise.
	idx := make(map[RGB]uint8, len(pal))
	for _, f := range frames {
		if f.W != w0 || f.H != h0 {
			return fmt.Errorf("draw: frame size %dx%d differs from %dx%d", f.W, f.H, w0, h0)
		}
		img := image.NewPaletted(image.Rect(0, 0, w0, h0), pal)
		for i, p := range f.Pix {
			ix, ok := idx[p]
			if !ok {
				ix = uint8(pal.Index(p.RGBA()))
				idx[p] = ix
			}
			img.Pix[i] = ix
		}
		anim.Image = append(anim.Image, img)
		anim.Delay = append(anim.Delay, delay)
	}
	return gif.EncodeAll(w, anim)
}

// WriteGIF writes an animated GIF file (delay in 100ths of a second per
// frame).
func WriteGIF(path string, frames []*Surface, delay int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("draw: %w", err)
	}
	defer f.Close()
	if err := EncodeGIF(f, frames, delay); err != nil {
		return fmt.Errorf("draw: encode %s: %w", path, err)
	}
	return f.Close()
}
