package draw

import (
	"fmt"
	"io"
	"strings"
)

// ANSI terminal export. Each character cell encodes two vertically stacked
// pixels using the Unicode upper-half-block with 24-bit foreground and
// background colors, so a 640×280 scope renders at 320×70 cells when scaled
// by 2. This gives the cmd/gscope viewer a live in-terminal display, the
// closest stdlib-only analogue to the paper's X11 window.

// ANSIOptions controls terminal rendering.
type ANSIOptions struct {
	// Scale divides the surface resolution; 1 renders every pixel, 2 every
	// second pixel, etc. Values < 1 are treated as 1.
	Scale int
	// MaxCols truncates output lines to at most this many character cells;
	// 0 means unlimited.
	MaxCols int
}

// WriteANSI renders the surface to w as ANSI half-block art.
func (s *Surface) WriteANSI(w io.Writer, opt ANSIOptions) error {
	scale := opt.Scale
	if scale < 1 {
		scale = 1
	}
	cols := s.W / scale
	if opt.MaxCols > 0 && cols > opt.MaxCols {
		cols = opt.MaxCols
	}
	rows := s.H / scale
	var b strings.Builder
	for cy := 0; cy+1 < rows; cy += 2 {
		var prevTop, prevBot RGB
		first := true
		for cx := 0; cx < cols; cx++ {
			top := s.At(cx*scale, cy*scale)
			bot := s.At(cx*scale, (cy+1)*scale)
			if first || top != prevTop || bot != prevBot {
				fmt.Fprintf(&b, "\x1b[38;2;%d;%d;%dm\x1b[48;2;%d;%d;%dm",
					top.R, top.G, top.B, bot.R, bot.G, bot.B)
				prevTop, prevBot = top, bot
				first = false
			}
			b.WriteString("▀")
		}
		b.WriteString("\x1b[0m\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ANSIHome returns the escape sequence that moves the cursor to the top-left
// corner, for animating successive frames in place.
func ANSIHome() string { return "\x1b[H" }

// ANSIClear returns the escape sequence that clears the terminal.
func ANSIClear() string { return "\x1b[2J\x1b[H" }
