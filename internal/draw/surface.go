// Package draw is a small software rasterizer. It stands in for the X11/GDK
// rendering layer the original gscope used: the widget toolkit and the scope
// canvas draw onto a Surface, which can be exported as a PNG (for
// regenerating the paper's figures) or as ANSI half-block art (for terminal
// demos).
package draw

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"os"

	"repro/internal/geom"
)

// RGB is a fully opaque 24-bit color.
type RGB struct {
	R, G, B uint8
}

// Common colors, chosen to match the paper's screenshots: a dark scope
// canvas with bright traces on a light widget background.
var (
	Black     = RGB{0, 0, 0}
	White     = RGB{255, 255, 255}
	Red       = RGB{220, 40, 40}
	Green     = RGB{40, 200, 80}
	Blue      = RGB{60, 90, 230}
	Yellow    = RGB{230, 210, 50}
	Cyan      = RGB{60, 200, 210}
	Magenta   = RGB{200, 70, 200}
	Orange    = RGB{240, 150, 40}
	Gray      = RGB{128, 128, 128}
	LightGray = RGB{211, 211, 211}
	DarkGray  = RGB{64, 64, 64}
	ScopeBG   = RGB{10, 24, 16} // dark green-black canvas
	GridGreen = RGB{30, 80, 50}
	WidgetBG  = RGB{214, 210, 202} // GTK-1.2 era widget gray
)

// Palette is the default trace color rotation used when a signal does not
// specify a color, mirroring gscope assigning distinct colors per signal.
var Palette = []RGB{Yellow, Cyan, Green, Red, Magenta, Orange, Blue, White}

// PaletteColor returns the i'th default trace color, wrapping around.
func PaletteColor(i int) RGB {
	if i < 0 {
		i = -i
	}
	return Palette[i%len(Palette)]
}

// RGBA converts to the stdlib color type.
func (c RGB) RGBA() color.RGBA { return color.RGBA{c.R, c.G, c.B, 255} }

// String formats the color as #rrggbb.
func (c RGB) String() string { return fmt.Sprintf("#%02x%02x%02x", c.R, c.G, c.B) }

// ParseColor parses "#rrggbb" or "#rgb".
func ParseColor(s string) (RGB, error) {
	var c RGB
	switch len(s) {
	case 7:
		if _, err := fmt.Sscanf(s, "#%02x%02x%02x", &c.R, &c.G, &c.B); err != nil {
			return RGB{}, fmt.Errorf("draw: bad color %q: %w", s, err)
		}
	case 4:
		var r, g, b uint8
		if _, err := fmt.Sscanf(s, "#%1x%1x%1x", &r, &g, &b); err != nil {
			return RGB{}, fmt.Errorf("draw: bad color %q: %w", s, err)
		}
		c = RGB{r * 17, g * 17, b * 17}
	default:
		return RGB{}, fmt.Errorf("draw: bad color %q", s)
	}
	return c, nil
}

// Blend mixes c toward other by t in [0,1].
func (c RGB) Blend(other RGB, t float64) RGB {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	mix := func(a, b uint8) uint8 { return uint8(float64(a) + (float64(b)-float64(a))*t) }
	return RGB{mix(c.R, other.R), mix(c.G, other.G), mix(c.B, other.B)}
}

// Surface is a W×H raster of RGB pixels with an active clip rectangle.
// All drawing is clipped; coordinates outside the surface are safe.
type Surface struct {
	W, H int
	Pix  []RGB // row-major, len == W*H
	clip geom.Rect
}

// NewSurface allocates a surface filled with Black.
func NewSurface(w, h int) *Surface {
	if w < 0 {
		w = 0
	}
	if h < 0 {
		h = 0
	}
	return &Surface{W: w, H: h, Pix: make([]RGB, w*h), clip: geom.XYWH(0, 0, w, h)}
}

// Bounds returns the full surface rectangle.
func (s *Surface) Bounds() geom.Rect { return geom.XYWH(0, 0, s.W, s.H) }

// SetClip restricts subsequent drawing to r intersected with the surface.
// It returns the previous clip so callers can restore it.
func (s *Surface) SetClip(r geom.Rect) geom.Rect {
	prev := s.clip
	s.clip = r.Intersect(s.Bounds())
	return prev
}

// ResetClip restores the clip to the whole surface.
func (s *Surface) ResetClip() { s.clip = s.Bounds() }

// Clip returns the active clip rectangle.
func (s *Surface) Clip() geom.Rect { return s.clip }

// Set writes one pixel, honoring the clip.
func (s *Surface) Set(x, y int, c RGB) {
	if x < s.clip.X || x >= s.clip.MaxX() || y < s.clip.Y || y >= s.clip.MaxY() {
		return
	}
	s.Pix[y*s.W+x] = c
}

// At reads one pixel; out-of-bounds reads return Black.
func (s *Surface) At(x, y int) RGB {
	if x < 0 || x >= s.W || y < 0 || y >= s.H {
		return RGB{}
	}
	return s.Pix[y*s.W+x]
}

// Fill paints the whole surface (ignoring the clip).
func (s *Surface) Fill(c RGB) {
	for i := range s.Pix {
		s.Pix[i] = c
	}
}

// FillRect paints a rectangle.
func (s *Surface) FillRect(r geom.Rect, c RGB) {
	r = r.Intersect(s.clip)
	if r.Empty() {
		return
	}
	for y := r.Y; y < r.MaxY(); y++ {
		row := s.Pix[y*s.W+r.X : y*s.W+r.MaxX()]
		for i := range row {
			row[i] = c
		}
	}
}

// StrokeRect outlines a rectangle with a 1-pixel border.
func (s *Surface) StrokeRect(r geom.Rect, c RGB) {
	if r.Empty() {
		return
	}
	s.HLine(r.X, r.MaxX()-1, r.Y, c)
	s.HLine(r.X, r.MaxX()-1, r.MaxY()-1, c)
	s.VLine(r.X, r.Y, r.MaxY()-1, c)
	s.VLine(r.MaxX()-1, r.Y, r.MaxY()-1, c)
}

// Bevel3D draws the classic GTK raised/sunken border used by buttons and
// canvas wells. raised=true gives a light top-left edge.
func (s *Surface) Bevel3D(r geom.Rect, raised bool) {
	light := White
	dark := Gray
	if !raised {
		light, dark = dark, light
	}
	s.HLine(r.X, r.MaxX()-1, r.Y, light)
	s.VLine(r.X, r.Y, r.MaxY()-1, light)
	s.HLine(r.X, r.MaxX()-1, r.MaxY()-1, dark)
	s.VLine(r.MaxX()-1, r.Y, r.MaxY()-1, dark)
}

// HLine draws a horizontal line from x0..x1 inclusive at row y.
func (s *Surface) HLine(x0, x1, y int, c RGB) {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y < s.clip.Y || y >= s.clip.MaxY() {
		return
	}
	if x0 < s.clip.X {
		x0 = s.clip.X
	}
	if x1 >= s.clip.MaxX() {
		x1 = s.clip.MaxX() - 1
	}
	for x := x0; x <= x1; x++ {
		s.Pix[y*s.W+x] = c
	}
}

// VLine draws a vertical line from y0..y1 inclusive at column x.
func (s *Surface) VLine(x, y0, y1 int, c RGB) {
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	if x < s.clip.X || x >= s.clip.MaxX() {
		return
	}
	if y0 < s.clip.Y {
		y0 = s.clip.Y
	}
	if y1 >= s.clip.MaxY() {
		y1 = s.clip.MaxY() - 1
	}
	for y := y0; y <= y1; y++ {
		s.Pix[y*s.W+x] = c
	}
}

// Line draws a 1-pixel Bresenham line between two points (inclusive).
func (s *Surface) Line(x0, y0, x1, y1 int, c RGB) {
	dx := x1 - x0
	if dx < 0 {
		dx = -dx
	}
	dy := y1 - y0
	if dy < 0 {
		dy = -dy
	}
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx - dy
	for {
		s.Set(x0, y0, c)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 > -dy {
			err -= dy
			x0 += sx
		}
		if e2 < dx {
			err += dx
			y0 += sy
		}
	}
}

// DottedHLine draws a horizontal line lighting every 'period'-th pixel,
// used for scope grid lines.
func (s *Surface) DottedHLine(x0, x1, y int, period int, c RGB) {
	if period < 1 {
		period = 1
	}
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	for x := x0; x <= x1; x++ {
		if (x-x0)%period == 0 {
			s.Set(x, y, c)
		}
	}
}

// DottedVLine draws a vertical dotted line.
func (s *Surface) DottedVLine(x, y0, y1 int, period int, c RGB) {
	if period < 1 {
		period = 1
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	for y := y0; y <= y1; y++ {
		if (y-y0)%period == 0 {
			s.Set(x, y, c)
		}
	}
}

// Polyline connects successive points with line segments.
func (s *Surface) Polyline(pts []geom.Pt, c RGB) {
	for i := 1; i < len(pts); i++ {
		s.Line(pts[i-1].X, pts[i-1].Y, pts[i].X, pts[i].Y, c)
	}
}

// Image converts the surface to a stdlib image.
func (s *Surface) Image() *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, s.W, s.H))
	for y := 0; y < s.H; y++ {
		for x := 0; x < s.W; x++ {
			p := s.Pix[y*s.W+x]
			o := img.PixOffset(x, y)
			img.Pix[o+0] = p.R
			img.Pix[o+1] = p.G
			img.Pix[o+2] = p.B
			img.Pix[o+3] = 255
		}
	}
	return img
}

// EncodePNG writes the surface as a PNG stream.
func (s *Surface) EncodePNG(w io.Writer) error {
	return png.Encode(w, s.Image())
}

// WritePNG writes the surface to a PNG file.
func (s *Surface) WritePNG(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("draw: %w", err)
	}
	defer f.Close()
	if err := s.EncodePNG(f); err != nil {
		return fmt.Errorf("draw: encode %s: %w", path, err)
	}
	return f.Close()
}
