package draw

import (
	"bytes"
	"image/gif"
	"image/png"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestNewSurfaceBlack(t *testing.T) {
	s := NewSurface(8, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 8; x++ {
			if s.At(x, y) != Black {
				t.Fatalf("pixel (%d,%d) not black", x, y)
			}
		}
	}
}

func TestSetAndAtBounds(t *testing.T) {
	s := NewSurface(4, 4)
	s.Set(1, 2, Red)
	if s.At(1, 2) != Red {
		t.Fatal("Set/At mismatch")
	}
	// Out-of-bounds writes must be safe; reads return black.
	s.Set(-1, 0, Red)
	s.Set(0, -1, Red)
	s.Set(4, 0, Red)
	s.Set(0, 4, Red)
	if s.At(-1, 0) != (RGB{}) || s.At(99, 99) != (RGB{}) {
		t.Fatal("out-of-bounds At should return zero color")
	}
}

func TestClipRestrictsDrawing(t *testing.T) {
	s := NewSurface(10, 10)
	s.SetClip(geom.XYWH(2, 2, 4, 4))
	s.FillRect(geom.XYWH(0, 0, 10, 10), White)
	if s.At(1, 1) != Black {
		t.Fatal("clip leaked at (1,1)")
	}
	if s.At(3, 3) != White {
		t.Fatal("clip blocked interior")
	}
	if s.At(6, 6) != Black {
		t.Fatal("clip leaked at (6,6)")
	}
	s.ResetClip()
	s.Set(0, 0, Red)
	if s.At(0, 0) != Red {
		t.Fatal("ResetClip did not restore full clip")
	}
}

func TestSetClipReturnsPrevious(t *testing.T) {
	s := NewSurface(10, 10)
	first := s.SetClip(geom.XYWH(1, 1, 3, 3))
	if first != s.Bounds() {
		t.Fatalf("initial clip should be full bounds, got %v", first)
	}
	second := s.SetClip(geom.XYWH(0, 0, 2, 2))
	if second != geom.XYWH(1, 1, 3, 3) {
		t.Fatalf("previous clip = %v", second)
	}
}

func TestHLineVLine(t *testing.T) {
	s := NewSurface(10, 10)
	s.HLine(2, 7, 5, Green)
	for x := 2; x <= 7; x++ {
		if s.At(x, 5) != Green {
			t.Fatalf("HLine missing pixel %d", x)
		}
	}
	if s.At(1, 5) != Black || s.At(8, 5) != Black {
		t.Fatal("HLine overran")
	}
	s.VLine(3, 8, 2, Blue) // reversed endpoints
	for y := 2; y <= 8; y++ {
		if s.At(3, y) != Blue {
			t.Fatalf("VLine missing pixel %d", y)
		}
	}
}

func TestLineEndpointsAlwaysDrawn(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		s := NewSurface(24, 24)
		x0, y0 := r.Intn(24), r.Intn(24)
		x1, y1 := r.Intn(24), r.Intn(24)
		s.Line(x0, y0, x1, y1, White)
		return s.At(x0, y0) == White && s.At(x1, y1) == White
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLineHorizontalMatchesHLine(t *testing.T) {
	a := NewSurface(16, 4)
	b := NewSurface(16, 4)
	a.Line(2, 1, 13, 1, Red)
	b.HLine(2, 13, 1, Red)
	if !bytes.Equal(flatten(a), flatten(b)) {
		t.Fatal("horizontal Line differs from HLine")
	}
}

func flatten(s *Surface) []byte {
	out := make([]byte, 0, len(s.Pix)*3)
	for _, p := range s.Pix {
		out = append(out, p.R, p.G, p.B)
	}
	return out
}

func TestFillAndStrokeRect(t *testing.T) {
	s := NewSurface(8, 8)
	s.StrokeRect(geom.XYWH(1, 1, 6, 6), White)
	if s.At(1, 1) != White || s.At(6, 6) != White || s.At(1, 6) != White {
		t.Fatal("StrokeRect corners missing")
	}
	if s.At(3, 3) != Black {
		t.Fatal("StrokeRect filled interior")
	}
}

func TestColorParseRoundTrip(t *testing.T) {
	f := func(r, g, b uint8) bool {
		c := RGB{r, g, b}
		got, err := ParseColor(c.String())
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestColorParseShortForm(t *testing.T) {
	c, err := ParseColor("#f0a")
	if err != nil {
		t.Fatal(err)
	}
	if c != (RGB{255, 0, 170}) {
		t.Fatalf("short form parsed to %v", c)
	}
	if _, err := ParseColor("nonsense"); err == nil {
		t.Fatal("bad color should error")
	}
	if _, err := ParseColor("#zzzzzz"); err == nil {
		t.Fatal("bad hex should error")
	}
}

func TestBlendEndpoints(t *testing.T) {
	a, b := Black, White
	if a.Blend(b, 0) != a {
		t.Fatal("Blend(0) should return the receiver")
	}
	if a.Blend(b, 1) != b {
		t.Fatal("Blend(1) should return the target")
	}
	mid := a.Blend(b, 0.5)
	if mid.R < 120 || mid.R > 135 {
		t.Fatalf("Blend(0.5) = %v", mid)
	}
	if a.Blend(b, -3) != a || a.Blend(b, 7) != b {
		t.Fatal("Blend should clamp t")
	}
}

func TestPaletteColorWraps(t *testing.T) {
	if PaletteColor(0) != PaletteColor(len(Palette)) {
		t.Fatal("palette should wrap")
	}
	if PaletteColor(-1) != PaletteColor(1) {
		t.Fatal("negative index should be safe")
	}
}

func TestTextRendersInk(t *testing.T) {
	s := NewSurface(100, 12)
	s.Text(0, 0, "Hello", White)
	ink := 0
	for _, p := range s.Pix {
		if p == White {
			ink++
		}
	}
	if ink < 20 {
		t.Fatalf("text rendered only %d pixels", ink)
	}
}

func TestTextWidth(t *testing.T) {
	if TextWidth("") != 0 {
		t.Fatal("empty text has zero width")
	}
	if TextWidth("ab") != 2*CharW-1 {
		t.Fatalf("TextWidth(ab) = %d", TextWidth("ab"))
	}
}

func TestGlyphFallback(t *testing.T) {
	if Glyph('日') != Glyph('?') {
		t.Fatal("non-ASCII should fall back to '?'")
	}
	if Glyph('A') == Glyph('B') {
		t.Fatal("distinct glyphs expected")
	}
}

func TestAllGlyphsNonEmptyExceptSpace(t *testing.T) {
	for ch := rune(0x21); ch <= 0x7e; ch++ {
		g := Glyph(ch)
		any := false
		for _, col := range g {
			if col != 0 {
				any = true
			}
		}
		if !any {
			t.Errorf("glyph %q is blank", ch)
		}
	}
	sp := Glyph(' ')
	for _, col := range sp {
		if col != 0 {
			t.Fatal("space glyph should be blank")
		}
	}
}

func TestEncodePNGDecodes(t *testing.T) {
	s := NewSurface(20, 10)
	s.FillRect(geom.XYWH(5, 2, 6, 4), Orange)
	var buf bytes.Buffer
	if err := s.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 20 || img.Bounds().Dy() != 10 {
		t.Fatalf("decoded size %v", img.Bounds())
	}
	r, g, b, _ := img.At(6, 3).RGBA()
	if uint8(r>>8) != Orange.R || uint8(g>>8) != Orange.G || uint8(b>>8) != Orange.B {
		t.Fatal("decoded pixel mismatch")
	}
}

func TestWriteANSIProducesOutput(t *testing.T) {
	s := NewSurface(8, 8)
	s.FillRect(geom.XYWH(0, 0, 8, 4), Red)
	var buf bytes.Buffer
	if err := s.WriteANSI(&buf, ANSIOptions{Scale: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("▀")) {
		t.Fatal("no half blocks emitted")
	}
	if !bytes.Contains(buf.Bytes(), []byte("38;2;220;40;40")) {
		t.Fatalf("missing red foreground escape in %q", out)
	}
}

func TestWriteANSIScaleHalvesOutput(t *testing.T) {
	s := NewSurface(16, 16)
	var full, half bytes.Buffer
	if err := s.WriteANSI(&full, ANSIOptions{Scale: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteANSI(&half, ANSIOptions{Scale: 2}); err != nil {
		t.Fatal(err)
	}
	if half.Len() >= full.Len() {
		t.Fatal("scaled output should be smaller")
	}
}

func TestDottedLinesPeriod(t *testing.T) {
	s := NewSurface(12, 3)
	s.DottedHLine(0, 11, 1, 3, White)
	for x := 0; x <= 11; x++ {
		want := x%3 == 0
		got := s.At(x, 1) == White
		if got != want {
			t.Fatalf("dotted pixel %d: got %v want %v", x, got, want)
		}
	}
}

func TestBevel3D(t *testing.T) {
	s := NewSurface(10, 10)
	r := geom.XYWH(0, 0, 10, 10)
	s.Bevel3D(r, true)
	if s.At(0, 0) != White {
		t.Fatal("raised bevel should have light top-left")
	}
	if s.At(9, 9) != Gray {
		t.Fatal("raised bevel should have dark bottom-right")
	}
	s2 := NewSurface(10, 10)
	s2.Bevel3D(r, false)
	if s2.At(0, 0) != Gray {
		t.Fatal("sunken bevel should have dark top-left")
	}
}

func TestPolyline(t *testing.T) {
	s := NewSurface(10, 10)
	s.Polyline([]geom.Pt{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 5, Y: 5}}, Cyan)
	if s.At(0, 0) != Cyan || s.At(5, 0) != Cyan || s.At(5, 5) != Cyan {
		t.Fatal("polyline endpoints missing")
	}
}

func TestEncodeGIFRoundTrip(t *testing.T) {
	frames := make([]*Surface, 3)
	for i := range frames {
		s := NewSurface(20, 10)
		s.FillRect(geom.XYWH(i*5, 2, 5, 5), Yellow)
		frames[i] = s
	}
	var buf bytes.Buffer
	if err := EncodeGIF(&buf, frames, 5); err != nil {
		t.Fatal(err)
	}
	anim, err := gif.DecodeAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(anim.Image) != 3 {
		t.Fatalf("decoded %d frames", len(anim.Image))
	}
	if anim.Delay[0] != 5 {
		t.Fatalf("delay = %d", anim.Delay[0])
	}
	r, g, b, _ := anim.Image[1].At(7, 4).RGBA()
	got := RGB{uint8(r >> 8), uint8(g >> 8), uint8(b >> 8)}
	if got != Yellow {
		t.Fatalf("frame 1 pixel = %v, want yellow", got)
	}
}

func TestEncodeGIFErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeGIF(&buf, nil, 5); err == nil {
		t.Fatal("no frames should error")
	}
	frames := []*Surface{NewSurface(4, 4), NewSurface(8, 8)}
	if err := EncodeGIF(&buf, frames, 5); err == nil {
		t.Fatal("mismatched frame sizes should error")
	}
}
