package glib

import (
	"container/heap"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Standard source priorities, mirroring glib. Lower values dispatch first
// when multiple sources are due at the same instant.
const (
	PriorityHigh    = -100
	PriorityDefault = 0
	PriorityIdle    = 200
)

// DefaultTickGranularity models the kernel timer tick the paper is pinned to
// (§4.5): on 2002-era Linux the select timeout resolves at 10 ms, capping
// polling at 100 Hz. Timeout deadlines are quantized up to this granularity.
const DefaultTickGranularity = 10 * time.Millisecond

// SourceID identifies an attached source. The zero value is never a valid
// ID.
type SourceID uint64

// TimeoutFunc is invoked when a timeout source fires. missed is the number
// of whole intervals that were lost since the previous dispatch (0 when the
// source fired on schedule); the paper's scope uses this to advance its
// sweep appropriately under scheduling-induced timeout loss (§4.5). Return
// true to keep the source installed, false to remove it.
type TimeoutFunc func(missed int) bool

// IdleFunc is invoked when the loop has no due timers. Return true to keep
// the source installed.
type IdleFunc func() bool

// timerSource is a pending timeout source.
type timerSource struct {
	id        SourceID
	priority  int
	interval  time.Duration
	deadline  time.Time // quantized next fire time
	scheduled time.Time // un-quantized phase anchor
	fn        TimeoutFunc
	removed   bool
	index     int // heap index
}

type timerHeap []*timerSource

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].id < h[j].id
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	s := x.(*timerSource)
	s.index = len(*h)
	*h = append(*h, s)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	s.index = -1
	*h = old[:n-1]
	return s
}

type idleSource struct {
	id      SourceID
	fn      IdleFunc
	removed bool
}

// Loop is a single-threaded event dispatcher. Sources may be added and
// removed from any goroutine; callbacks always run on the goroutine that
// calls Run, Iterate or AdvanceTo.
type Loop struct {
	clock       Clock
	granularity time.Duration

	mu     sync.Mutex
	timers timerHeap
	byID   map[SourceID]*timerSource
	idles  []*idleSource
	nextID uint64

	posted chan func()
	wake   chan struct{}
	quit   atomic.Bool

	lostTicks atomic.Int64 // total missed intervals across all timeout sources
}

// Option configures a Loop.
type Option func(*Loop)

// WithGranularity overrides the timer tick quantum. A granularity of 0
// disables quantization (ideal timers).
func WithGranularity(g time.Duration) Option {
	return func(l *Loop) { l.granularity = g }
}

// NewLoop creates a Loop on the given clock. A nil clock means RealClock.
func NewLoop(clock Clock, opts ...Option) *Loop {
	if clock == nil {
		clock = RealClock{}
	}
	l := &Loop{
		clock:       clock,
		granularity: DefaultTickGranularity,
		byID:        make(map[SourceID]*timerSource),
		posted:      make(chan func(), 1024),
		wake:        make(chan struct{}, 1),
	}
	for _, o := range opts {
		o(l)
	}
	return l
}

// Clock returns the clock the loop runs on.
func (l *Loop) Clock() Clock { return l.clock }

// Granularity returns the timer tick quantum.
func (l *Loop) Granularity() time.Duration { return l.granularity }

// LostTicks returns the total number of missed timeout intervals observed
// since the loop was created (§4.5 lost-timeout accounting).
func (l *Loop) LostTicks() int64 { return l.lostTicks.Load() }

func (l *Loop) wakeup() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// quantize rounds a deadline up to the next tick boundary, modeling the
// kernel waking the process only on timer interrupts.
func (l *Loop) quantize(t time.Time) time.Time {
	if l.granularity <= 0 {
		return t
	}
	ns := t.UnixNano()
	g := int64(l.granularity)
	q := (ns + g - 1) / g * g
	return time.Unix(0, q)
}

// TimeoutAdd installs a repeating timeout source with the given interval and
// default priority. It panics if interval <= 0 or fn is nil.
func (l *Loop) TimeoutAdd(interval time.Duration, fn TimeoutFunc) SourceID {
	return l.TimeoutAddPriority(interval, PriorityDefault, fn)
}

// TimeoutAddPriority installs a repeating timeout source with an explicit
// priority.
func (l *Loop) TimeoutAddPriority(interval time.Duration, priority int, fn TimeoutFunc) SourceID {
	if interval <= 0 {
		panic("glib: TimeoutAdd interval must be positive")
	}
	if fn == nil {
		panic("glib: TimeoutAdd fn must not be nil")
	}
	now := l.clock.Now()
	l.mu.Lock()
	l.nextID++
	s := &timerSource{
		id:        SourceID(l.nextID),
		priority:  priority,
		interval:  interval,
		scheduled: now.Add(interval),
		fn:        fn,
	}
	s.deadline = l.quantize(s.scheduled)
	heap.Push(&l.timers, s)
	l.byID[s.id] = s
	l.mu.Unlock()
	l.wakeup()
	return s.id
}

// IdleAdd installs an idle source that runs when no timers are due.
func (l *Loop) IdleAdd(fn IdleFunc) SourceID {
	if fn == nil {
		panic("glib: IdleAdd fn must not be nil")
	}
	l.mu.Lock()
	l.nextID++
	s := &idleSource{id: SourceID(l.nextID), fn: fn}
	l.idles = append(l.idles, s)
	id := s.id
	l.mu.Unlock()
	l.wakeup()
	return id
}

// Remove detaches a source by ID. Removing an unknown or already-removed
// source is a no-op and returns false.
func (l *Loop) Remove(id SourceID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if s, ok := l.byID[id]; ok {
		s.removed = true
		delete(l.byID, id)
		if s.index >= 0 {
			heap.Remove(&l.timers, s.index)
		}
		return true
	}
	for _, s := range l.idles {
		if s.id == id && !s.removed {
			s.removed = true
			return true
		}
	}
	return false
}

// Invoke schedules fn to run on the loop goroutine. It is the thread-safety
// bridge the paper describes as "acquiring the global GTK lock" (§4.3):
// application threads hand work to the GUI thread instead of mutating scope
// state directly. Invoke never blocks the loop; it may block the caller
// briefly if the posting queue is full.
func (l *Loop) Invoke(fn func()) {
	if fn == nil {
		return
	}
	l.posted <- fn
	l.wakeup()
}

// Quit makes Run return after the current dispatch completes.
func (l *Loop) Quit() {
	l.quit.Store(true)
	l.wakeup()
}

// ErrVirtualRun is returned by Run when called on a loop whose clock is not
// a RealClock; virtual-clock loops are driven with AdvanceTo/Iterate.
var ErrVirtualRun = errors.New("glib: Run requires a real clock; drive virtual loops with AdvanceTo")

// Run dispatches sources until Quit is called. It must be used with a real
// clock; deterministic tests use AdvanceTo instead.
func (l *Loop) Run() error {
	if _, ok := l.clock.(RealClock); !ok {
		return ErrVirtualRun
	}
	l.quit.Store(false)
	for !l.quit.Load() {
		l.drainPosted()
		if l.quit.Load() {
			break
		}
		now := l.clock.Now()
		l.dispatchDue(now)
		idleRan := l.dispatchIdles()

		next, ok := l.nextDeadline()
		var wait time.Duration
		switch {
		case ok:
			wait = next.Sub(l.clock.Now())
			if wait < 0 {
				wait = 0
			}
		case idleRan:
			wait = 0
		default:
			wait = time.Hour // nothing due; sleep until woken
		}
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-l.wake:
				t.Stop()
			case fn := <-l.posted:
				t.Stop()
				fn()
			case <-t.C:
			}
		} else {
			// Yield to wake/posted without sleeping.
			select {
			case <-l.wake:
			default:
			}
		}
	}
	return nil
}

// Iterate performs one dispatch pass at the clock's current time: posted
// functions, due timers, then idle sources. It returns true if any callback
// ran. It never blocks.
func (l *Loop) Iterate() bool {
	ran := l.drainPosted()
	if l.dispatchDue(l.clock.Now()) {
		ran = true
	}
	if l.dispatchIdles() {
		ran = true
	}
	return ran
}

// AdvanceTo drives a VirtualClock loop deterministically: it repeatedly
// advances the clock to the next timer deadline at or before t, dispatching
// in deadline order, and finally sets the clock to t. It panics when the
// loop's clock is not a *VirtualClock.
func (l *Loop) AdvanceTo(t time.Time) {
	vc, ok := l.clock.(*VirtualClock)
	if !ok {
		panic("glib: AdvanceTo requires a *VirtualClock")
	}
	for {
		l.drainPosted()
		next, ok := l.nextDeadline()
		if !ok || next.After(t) {
			break
		}
		if next.After(vc.Now()) {
			vc.Set(next)
		}
		l.dispatchDue(vc.Now())
		l.dispatchIdles()
	}
	if t.After(vc.Now()) {
		vc.Set(t)
	}
	l.drainPosted()
	l.dispatchIdles()
}

// Advance is shorthand for AdvanceTo(now + d) on a virtual clock.
func (l *Loop) Advance(d time.Duration) {
	vc, ok := l.clock.(*VirtualClock)
	if !ok {
		panic("glib: Advance requires a *VirtualClock")
	}
	l.AdvanceTo(vc.Now().Add(d))
}

func (l *Loop) drainPosted() bool {
	ran := false
	for {
		select {
		case fn := <-l.posted:
			fn()
			ran = true
		default:
			return ran
		}
	}
}

func (l *Loop) nextDeadline() (time.Time, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.timers) == 0 {
		return time.Time{}, false
	}
	return l.timers[0].deadline, true
}

// dispatchDue fires every timer whose deadline is at or before now and
// reschedules repeating sources phase-coherently: the next deadline is
// computed from the original schedule, and wholly skipped intervals are
// reported to the callback as missed ticks rather than replayed.
func (l *Loop) dispatchDue(now time.Time) bool {
	ran := false
	for {
		l.mu.Lock()
		if len(l.timers) == 0 || l.timers[0].deadline.After(now) {
			l.mu.Unlock()
			return ran
		}
		s := heap.Pop(&l.timers).(*timerSource)
		l.mu.Unlock()
		if s.removed {
			continue
		}

		// Count whole intervals lost beyond the one being delivered.
		missed := 0
		if late := now.Sub(s.scheduled); late > 0 {
			missed = int(late / s.interval)
		}
		if missed > 0 {
			l.lostTicks.Add(int64(missed))
		}

		keep := s.fn(missed)
		ran = true

		l.mu.Lock()
		if keep && !s.removed {
			// Advance the phase anchor past now so the source does not
			// fire in a burst to catch up.
			s.scheduled = s.scheduled.Add(time.Duration(missed+1) * s.interval)
			if !s.scheduled.After(now) {
				s.scheduled = s.scheduled.Add(s.interval)
			}
			s.deadline = l.quantize(s.scheduled)
			heap.Push(&l.timers, s)
		} else {
			s.removed = true
			delete(l.byID, s.id)
		}
		l.mu.Unlock()
	}
}

func (l *Loop) dispatchIdles() bool {
	l.mu.Lock()
	if len(l.idles) == 0 {
		l.mu.Unlock()
		return false
	}
	batch := make([]*idleSource, len(l.idles))
	copy(batch, l.idles)
	l.mu.Unlock()

	ran := false
	for _, s := range batch {
		if s.removed {
			continue
		}
		keep := s.fn()
		ran = true
		if !keep {
			s.removed = true
		}
	}

	l.mu.Lock()
	kept := l.idles[:0]
	for _, s := range l.idles {
		if !s.removed {
			kept = append(kept, s)
		}
	}
	l.idles = kept
	l.mu.Unlock()
	return ran
}
