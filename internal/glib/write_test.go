package glib

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
)

// lockedBuffer is an io.Writer safe for the watch's writer goroutine.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// gatedWriter blocks every Write until release is closed.
type gatedWriter struct {
	release chan struct{}
	lockedBuffer
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	<-g.release
	return g.lockedBuffer.Write(p)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWriteWatchWritesInOrder(t *testing.T) {
	loop := NewLoop(NewVirtualClock(time.Unix(0, 0)))
	var buf lockedBuffer
	ww := loop.WatchWriter(&buf, 0, nil)
	for _, s := range []string{"a\n", "b\n", "c\n"} {
		if !ww.Send([]byte(s)) {
			t.Fatal("send refused")
		}
	}
	waitFor(t, func() bool { return ww.Sent() == 3 })
	if got := buf.String(); got != "a\nb\nc\n" {
		t.Fatalf("wrote %q", got)
	}
	if ww.Dropped() != 0 || ww.Queued() != 0 {
		t.Fatalf("dropped=%d queued=%d", ww.Dropped(), ww.Queued())
	}
	ww.Cancel()
	<-ww.Done()
}

func TestWriteWatchDropOldest(t *testing.T) {
	loop := NewLoop(NewVirtualClock(time.Unix(0, 0)))
	gw := &gatedWriter{release: make(chan struct{})}
	ww := loop.WatchWriter(gw, 4, nil)

	// First send is picked up by the writer goroutine and blocks in Write;
	// wait for that so the queue fills deterministically.
	ww.Send([]byte("head\n"))
	waitFor(t, func() bool { return ww.Queued() == 0 })

	for i := 0; i < 10; i++ {
		ww.Send([]byte{byte('0' + i), '\n'})
	}
	if ww.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", ww.Dropped())
	}
	if ww.Queued() != 4 {
		t.Fatalf("queued = %d, want 4", ww.Queued())
	}
	close(gw.release)
	waitFor(t, func() bool { return ww.Queued() == 0 && ww.Sent() == 5 })
	// The newest four survive; the oldest six were dropped.
	if got := gw.String(); got != "head\n6\n7\n8\n9\n" {
		t.Fatalf("wrote %q", got)
	}
	ww.Cancel()
	<-ww.Done()
}

func TestWriteWatchProtectedChunkSurvivesDropOldest(t *testing.T) {
	loop := NewLoop(NewVirtualClock(time.Unix(0, 0)))
	gw := &gatedWriter{release: make(chan struct{})}
	ww := loop.WatchWriter(gw, 4, nil)

	// Wedge the writer on a first chunk so the queue fills behind it.
	ww.Send([]byte("x\n"))
	waitFor(t, func() bool { return ww.Queued() == 0 })

	ww.SendProtected([]byte("# banner\n"))
	for i := 0; i < 10; i++ {
		ww.Send([]byte{byte('0' + i), '\n'})
	}
	// Bound 4 with one protected: the banner plus the newest three
	// unprotected survive; eviction never touches the protected prefix.
	if ww.Queued() != 4 {
		t.Fatalf("queued = %d, want 4", ww.Queued())
	}
	if ww.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", ww.Dropped())
	}
	close(gw.release)
	waitFor(t, func() bool { return ww.Queued() == 0 && ww.Sent() == 5 })
	if got := gw.String(); got != "x\n# banner\n7\n8\n9\n" {
		t.Fatalf("wrote %q", got)
	}
	ww.Cancel()
	<-ww.Done()
}

type failWriter struct{ err error }

func (f *failWriter) Write(p []byte) (int, error) { return 0, f.err }

func TestWriteWatchErrorCallbackOnLoop(t *testing.T) {
	loop := NewLoop(NewVirtualClock(time.Unix(0, 0)))
	boom := errors.New("boom")
	var got error
	ww := loop.WatchWriter(&failWriter{err: boom}, 0, func(err error) { got = err })
	ww.Send([]byte("x\n"))
	<-ww.Done()
	waitFor(t, func() bool { loop.Iterate(); return got != nil })
	if !errors.Is(got, boom) {
		t.Fatalf("callback got %v", got)
	}
	if !errors.Is(ww.Err(), boom) {
		t.Fatalf("Err() = %v", ww.Err())
	}
	if ww.Send([]byte("y\n")) {
		t.Fatal("send after failure should be refused")
	}
}

func TestWriteWatchCancelSuppressesCallback(t *testing.T) {
	loop := NewLoop(NewVirtualClock(time.Unix(0, 0)))
	gw := &gatedWriter{release: make(chan struct{})}
	called := false
	ww := loop.WatchWriter(gw, 0, func(error) { called = true })
	ww.Send([]byte("x\n"))
	ww.Cancel()
	close(gw.release)
	<-ww.Done()
	for i := 0; i < 10; i++ {
		loop.Iterate()
	}
	if called {
		t.Fatal("onErr ran after Cancel")
	}
	if ww.Send([]byte("y\n")) {
		t.Fatal("send after cancel should be refused")
	}
}

// failingWriter fails every write.
type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

func TestWriteWatchFlushedConvergesAfterError(t *testing.T) {
	l, _ := newVirtualLoop(0)
	ww := l.WatchWriter(failingWriter{}, 8, nil)
	ww.Send([]byte("doomed\n"))
	ww.Send([]byte("also doomed\n"))
	deadline := time.Now().Add(2 * time.Second)
	for !ww.Flushed() {
		if time.Now().After(deadline) {
			t.Fatalf("Flushed never converged: enq=%d written=%d dropped=%d",
				ww.EnqueuedBytes(), ww.WrittenBytes(), ww.DroppedBytes())
		}
		time.Sleep(time.Millisecond)
	}
	if ww.WrittenBytes() != 0 || ww.DroppedBytes() == 0 {
		t.Fatalf("bytes = %d/%d", ww.WrittenBytes(), ww.DroppedBytes())
	}
	<-ww.Done()
}

func TestWriteWatchFlushedConvergesAfterCancel(t *testing.T) {
	l, _ := newVirtualLoop(0)
	pr, pw := io.Pipe() // nothing ever reads pr, so writes block in flight
	defer pr.Close()
	ww := l.WatchWriter(pw, 8, nil)
	ww.Send([]byte("wedged 1\n"))
	ww.Send([]byte("wedged 2\n"))
	// Wait until the writer goroutine has taken a batch off the queue
	// and is blocked inside the pipe write — Cancel must then cope with
	// a write in flight.
	testutil.WaitFor(t, "writer to block mid-write", func() bool { return ww.Queued() < 2 })
	ww.Cancel()
	pw.Close() // unblock the in-flight write, per the Cancel contract
	deadline := time.Now().Add(2 * time.Second)
	for !ww.Flushed() {
		if time.Now().After(deadline) {
			t.Fatalf("Flushed never converged after Cancel: enq=%d written=%d dropped=%d",
				ww.EnqueuedBytes(), ww.WrittenBytes(), ww.DroppedBytes())
		}
		time.Sleep(time.Millisecond)
	}
	<-ww.Done()
}

// TestWriteWatchAllProtectedCappedAtLimit is the regression test for
// unbounded growth through SendProtected: when every queued chunk is
// protected the eviction loop cannot run, and the queue used to grow past
// the limit without bound. The bound must hold — the incoming chunk drops
// (counted) once the queue is protected chunks to the limit.
func TestWriteWatchAllProtectedCappedAtLimit(t *testing.T) {
	loop := NewLoop(NewVirtualClock(time.Unix(0, 0)))
	gw := &gatedWriter{release: make(chan struct{})}
	ww := loop.WatchWriter(gw, 4, nil)

	// Wedge the writer on a first chunk so the queue fills behind it.
	ww.Send([]byte("head\n"))
	waitFor(t, func() bool { return ww.Queued() == 0 })

	for i := 0; i < 10; i++ {
		if !ww.SendProtected([]byte{byte('0' + i), '\n'}) {
			t.Fatalf("SendProtected %d refused a live watch", i)
		}
	}
	if ww.Queued() != 4 {
		t.Fatalf("queued = %d, want the limit 4", ww.Queued())
	}
	if ww.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", ww.Dropped())
	}
	// A regular send against a full all-protected queue drops too: there
	// is nothing evictable.
	ww.Send([]byte("x\n"))
	if ww.Queued() != 4 || ww.Dropped() != 7 {
		t.Fatalf("after Send: queued=%d dropped=%d, want 4/7", ww.Queued(), ww.Dropped())
	}
	close(gw.release)
	waitFor(t, func() bool { return ww.Queued() == 0 && ww.Sent() == 5 })
	// The protected prefix that fit the bound survives in FIFO order.
	if got := gw.String(); got != "head\n0\n1\n2\n3\n" {
		t.Fatalf("wrote %q", got)
	}
	if !ww.Flushed() {
		t.Fatalf("byte accounting unbalanced: enq=%d written=%d dropped=%d",
			ww.EnqueuedBytes(), ww.WrittenBytes(), ww.DroppedBytes())
	}
	ww.Cancel()
	<-ww.Done()
}
