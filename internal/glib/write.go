package glib

import (
	"io"
	"sync"
	"sync/atomic"
)

// The read-side watches in io.go emulate G_IO_IN. WriteWatch is the G_IO_OUT
// counterpart for connections the loop writes to (the netscope hub's
// subscribers): callers on the loop goroutine enqueue chunks without ever
// blocking, a per-watch goroutine performs the blocking writes, and the
// queue is bounded with a drop-oldest policy so one stalled peer can only
// lose its own data — it can never stall the loop or other peers.

// DefaultWriteQueueLimit bounds a WriteWatch's queue when the caller passes
// a non-positive limit.
const DefaultWriteQueueLimit = 1024

// WriteErrFunc is invoked once, on the loop goroutine, when a watched
// writer fails. The watch is already canceled when it runs; it is not
// called after Cancel.
type WriteErrFunc func(err error)

// WriteWatch is a handle to a write watch: a bounded outbound queue drained
// by a background goroutine.
type WriteWatch struct {
	loop  *Loop
	w     io.Writer
	onErr WriteErrFunc
	limit int

	mu sync.Mutex
	//gscope:guardedby mu
	queue [][]byte
	// protected counts leading queue chunks exempt from drop-oldest.
	//gscope:guardedby mu
	protected int
	//gscope:guardedby mu
	closed bool

	kick chan struct{}
	done chan struct{}

	canceled atomic.Bool
	sent     atomic.Int64
	dropped  atomic.Int64
	errv     atomic.Value // error

	// Byte accounting: with batch-sized chunks, chunk counts no longer
	// measure traffic; bytes do. enqueued == written+droppedB (with an
	// empty queue) means every accepted byte reached the socket.
	enqueued atomic.Int64
	written  atomic.Int64
	droppedB atomic.Int64
}

// WatchWriter starts a write watch on w. limit bounds the queue in chunks
// (non-positive means DefaultWriteQueueLimit). onErr, if non-nil, is
// delivered on the loop goroutine when a write fails; the underlying writer
// is not closed by the watch — the error callback (or Cancel caller) owns
// that, mirroring the read-side watches.
func (l *Loop) WatchWriter(w io.Writer, limit int, onErr WriteErrFunc) *WriteWatch {
	if limit <= 0 {
		limit = DefaultWriteQueueLimit
	}
	ww := &WriteWatch{
		loop:  l,
		w:     w,
		onErr: onErr,
		limit: limit,
		kick:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	go ww.writer()
	return ww
}

// Send enqueues one chunk for writing and returns immediately. The chunk is
// not copied and must not be mutated afterwards (the hub shares one encoded
// tuple line across every subscriber's watch). When the queue is full the
// oldest queued chunks are dropped — never the loop blocked — and the drop
// counter advances. Send reports false once the watch has failed or been
// canceled.
//
//gscope:hotpath
func (ww *WriteWatch) Send(chunk []byte) bool { return ww.send(chunk, false) }

// SendProtected enqueues a chunk that is exempt from the drop-oldest
// policy: it counts toward the bound but is never evicted (protocol
// handshakes must reach the peer or the whole stream is unframed).
// Protection applies only while the queue holds nothing but protected
// chunks — i.e. to handshake chunks sent before any regular traffic,
// which is the only place FIFO order and protection can coexist; later
// calls behave like Send. Protected chunks are capped at the queue limit:
// once the queue is protected chunks to the bound, nothing is evictable,
// so the incoming chunk is the one dropped (and counted) — the bound holds
// even for a caller that protects everything.
//
//gscope:hotpath
func (ww *WriteWatch) SendProtected(chunk []byte) bool { return ww.send(chunk, true) }

//gscope:hotpath
func (ww *WriteWatch) send(chunk []byte, protect bool) bool {
	if ww.canceled.Load() {
		return false
	}
	ww.mu.Lock()
	if ww.closed {
		ww.mu.Unlock()
		return false
	}
	for len(ww.queue) >= ww.limit && len(ww.queue) > ww.protected {
		var evicted []byte
		if ww.protected > 0 {
			evicted = ww.queue[ww.protected]
			ww.queue = append(ww.queue[:ww.protected], ww.queue[ww.protected+1:]...)
		} else {
			evicted = ww.queue[0]
			ww.queue = ww.queue[1:]
		}
		ww.dropped.Add(1)
		ww.droppedB.Add(int64(len(evicted)))
	}
	if len(ww.queue) >= ww.limit {
		// Everything resident is protected: the eviction loop could not
		// make room, and growing past the limit would let a peer that
		// never drains (every queued chunk a handshake) hold unbounded
		// memory. Drop the incoming chunk instead — enqueued-then-dropped
		// in the byte accounting, so Flushed stays balanced.
		ww.dropped.Add(1)
		ww.enqueued.Add(int64(len(chunk)))
		ww.droppedB.Add(int64(len(chunk)))
		ww.mu.Unlock()
		return true
	}
	if protect && len(ww.queue) == ww.protected {
		ww.protected++
	}
	ww.queue = append(ww.queue, chunk)
	ww.enqueued.Add(int64(len(chunk)))
	ww.mu.Unlock()
	select {
	case ww.kick <- struct{}{}:
	default:
	}
	return true
}

// Queued returns the number of chunks waiting to be written.
func (ww *WriteWatch) Queued() int {
	ww.mu.Lock()
	defer ww.mu.Unlock()
	return len(ww.queue)
}

// Sent returns the number of chunks written to the underlying writer.
func (ww *WriteWatch) Sent() int64 { return ww.sent.Load() }

// Dropped returns the number of chunks discarded by the drop-oldest policy.
func (ww *WriteWatch) Dropped() int64 { return ww.dropped.Load() }

// EnqueuedBytes returns the total bytes accepted by Send/SendProtected.
func (ww *WriteWatch) EnqueuedBytes() int64 { return ww.enqueued.Load() }

// WrittenBytes returns the total bytes written to the underlying writer.
func (ww *WriteWatch) WrittenBytes() int64 { return ww.written.Load() }

// DroppedBytes returns the total bytes discarded by the drop-oldest policy.
func (ww *WriteWatch) DroppedBytes() int64 { return ww.droppedB.Load() }

// Flushed reports whether every accepted byte has either been written or
// dropped — i.e. nothing is queued or in flight.
func (ww *WriteWatch) Flushed() bool {
	return ww.enqueued.Load() == ww.written.Load()+ww.droppedB.Load()
}

// Err returns the write error that stopped the watch, if any.
func (ww *WriteWatch) Err() error {
	if err, ok := ww.errv.Load().(error); ok {
		return err
	}
	return nil
}

// Cancel stops the watch: queued chunks are discarded (counted as dropped
// bytes, so Flushed stays meaningful) and no error callback will run. A
// write already in progress is not interrupted — close the underlying
// connection to unblock it, as with read watches.
func (ww *WriteWatch) Cancel() {
	ww.canceled.Store(true)
	ww.mu.Lock()
	ww.closed = true
	for _, c := range ww.queue {
		ww.droppedB.Add(int64(len(c)))
	}
	ww.queue = nil
	ww.protected = 0
	ww.mu.Unlock()
	select {
	case ww.kick <- struct{}{}:
	default:
	}
}

// Done returns a channel closed when the writer goroutine has exited.
func (ww *WriteWatch) Done() <-chan struct{} { return ww.done }

func (ww *WriteWatch) writer() {
	defer close(ww.done)
	for {
		ww.mu.Lock()
		batch := ww.queue
		ww.queue = nil
		ww.protected = 0
		closed := ww.closed
		ww.mu.Unlock()

		if len(batch) > 0 {
			buf := make([]byte, 0, 64*len(batch))
			for _, c := range batch {
				buf = append(buf, c...)
			}
			if _, err := ww.w.Write(buf); err != nil {
				ww.errv.Store(err)
				ww.mu.Lock()
				ww.closed = true
				// The failed batch and anything still queued will never
				// be written; count them dropped so Flushed() (and its
				// waiters) converge instead of spinning forever.
				ww.droppedB.Add(int64(len(buf)))
				for _, c := range ww.queue {
					ww.droppedB.Add(int64(len(c)))
				}
				ww.queue = nil
				ww.mu.Unlock()
				if !ww.canceled.Swap(true) && ww.onErr != nil {
					ww.loop.Invoke(func() { ww.onErr(err) })
				}
				return
			}
			ww.sent.Add(int64(len(batch)))
			ww.written.Add(int64(len(buf)))
			continue
		}
		if closed {
			return
		}
		<-ww.kick
	}
}
