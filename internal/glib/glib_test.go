package glib

import (
	"bytes"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func epoch() time.Time { return time.Unix(1000, 0) }

func newVirtualLoop(granularity time.Duration) (*Loop, *VirtualClock) {
	vc := NewVirtualClock(epoch())
	l := NewLoop(vc, WithGranularity(granularity))
	return l, vc
}

func TestTimeoutFiresAtInterval(t *testing.T) {
	l, _ := newVirtualLoop(0)
	var fires int
	l.TimeoutAdd(50*time.Millisecond, func(missed int) bool {
		fires++
		return true
	})
	l.Advance(500 * time.Millisecond)
	if fires != 10 {
		t.Fatalf("fires = %d, want 10", fires)
	}
}

func TestTimeoutQuantization(t *testing.T) {
	// With a 10ms tick, a 15ms timeout fires on 10ms boundaries: 20, 40,
	// 60 ... (each deadline rounded up).
	l, vc := newVirtualLoop(10 * time.Millisecond)
	var times []time.Duration
	l.TimeoutAdd(15*time.Millisecond, func(missed int) bool {
		times = append(times, vc.Now().Sub(epoch()))
		return true
	})
	l.Advance(100 * time.Millisecond)
	if len(times) == 0 {
		t.Fatal("no fires")
	}
	for _, at := range times {
		if at%(10*time.Millisecond) != 0 {
			t.Fatalf("fire at %v not on a 10ms tick", at)
		}
	}
	if times[0] != 20*time.Millisecond {
		t.Fatalf("first fire at %v, want 20ms", times[0])
	}
}

func TestTimeoutReturnFalseRemoves(t *testing.T) {
	l, _ := newVirtualLoop(0)
	var fires int
	l.TimeoutAdd(10*time.Millisecond, func(missed int) bool {
		fires++
		return fires < 3
	})
	l.Advance(time.Second)
	if fires != 3 {
		t.Fatalf("fires = %d, want 3", fires)
	}
}

func TestRemoveTimeout(t *testing.T) {
	l, _ := newVirtualLoop(0)
	var fires int
	id := l.TimeoutAdd(10*time.Millisecond, func(missed int) bool {
		fires++
		return true
	})
	l.Advance(35 * time.Millisecond)
	if !l.Remove(id) {
		t.Fatal("Remove should find the source")
	}
	if l.Remove(id) {
		t.Fatal("second Remove should return false")
	}
	l.Advance(100 * time.Millisecond)
	if fires != 3 {
		t.Fatalf("fires = %d after removal, want 3", fires)
	}
}

func TestLostTickAccounting(t *testing.T) {
	// A scheduling stall: the clock jumps past several intervals before
	// the loop gets to run (vc.Set models the kernel not waking the
	// process, §4.5). The source then fires once with the missed count
	// rather than replaying every interval.
	l, vc := newVirtualLoop(0)
	var fires int
	var missedTotal int
	l.TimeoutAdd(10*time.Millisecond, func(missed int) bool {
		fires++
		missedTotal += missed
		return true
	})
	vc.Set(epoch().Add(100 * time.Millisecond))
	l.Iterate()
	if fires != 1 {
		t.Fatalf("fires = %d, want 1 (coalesced)", fires)
	}
	if missedTotal != 9 {
		t.Fatalf("missed = %d, want 9", missedTotal)
	}
	if l.LostTicks() != 9 {
		t.Fatalf("LostTicks = %d, want 9", l.LostTicks())
	}
}

func TestAdvanceToNeverMissesTicks(t *testing.T) {
	// AdvanceTo models ideal time progression: every deadline is visited
	// exactly, so no ticks are lost even across a large span.
	l, _ := newVirtualLoop(0)
	var fires, missedTotal int
	l.TimeoutAdd(10*time.Millisecond, func(missed int) bool {
		fires++
		missedTotal += missed
		return true
	})
	l.Advance(time.Second)
	if fires != 100 || missedTotal != 0 {
		t.Fatalf("fires=%d missed=%d, want 100/0", fires, missedTotal)
	}
}

func TestLostTicksPreservePhase(t *testing.T) {
	l, vc := newVirtualLoop(0)
	var times []time.Duration
	l.TimeoutAdd(10*time.Millisecond, func(missed int) bool {
		times = append(times, vc.Now().Sub(epoch()))
		return true
	})
	// Stall to 95ms: a coalesced fire at 95 (missed 8), then the source
	// resumes on its original 10ms phase: 100, 110, 120.
	vc.Set(epoch().Add(95 * time.Millisecond))
	l.Iterate()
	l.Advance(25 * time.Millisecond)
	want := []time.Duration{95 * time.Millisecond, 100 * time.Millisecond, 110 * time.Millisecond, 120 * time.Millisecond}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestMultipleTimeoutsInterleave(t *testing.T) {
	l, _ := newVirtualLoop(0)
	var a, b int
	l.TimeoutAdd(10*time.Millisecond, func(int) bool { a++; return true })
	l.TimeoutAdd(25*time.Millisecond, func(int) bool { b++; return true })
	l.Advance(100 * time.Millisecond)
	if a != 10 || b != 4 {
		t.Fatalf("a=%d b=%d, want 10 and 4", a, b)
	}
}

func TestPriorityOrderAtSameDeadline(t *testing.T) {
	l, _ := newVirtualLoop(0)
	var order []string
	l.TimeoutAddPriority(10*time.Millisecond, PriorityDefault, func(int) bool {
		order = append(order, "default")
		return false
	})
	l.TimeoutAddPriority(10*time.Millisecond, PriorityHigh, func(int) bool {
		order = append(order, "high")
		return false
	})
	l.Advance(10 * time.Millisecond)
	if len(order) != 2 || order[0] != "high" {
		t.Fatalf("order = %v", order)
	}
}

func TestIdleRunsAndRemoves(t *testing.T) {
	l, _ := newVirtualLoop(0)
	var n int
	l.IdleAdd(func() bool {
		n++
		return n < 2
	})
	l.Iterate()
	l.Iterate()
	l.Iterate()
	if n != 2 {
		t.Fatalf("idle ran %d times, want 2", n)
	}
}

func TestIdleRemoveByID(t *testing.T) {
	l, _ := newVirtualLoop(0)
	var n int
	id := l.IdleAdd(func() bool { n++; return true })
	l.Iterate()
	if !l.Remove(id) {
		t.Fatal("Remove idle failed")
	}
	l.Iterate()
	if n != 1 {
		t.Fatalf("idle ran %d times after removal", n)
	}
}

func TestInvokeRunsOnLoop(t *testing.T) {
	l, _ := newVirtualLoop(0)
	done := make(chan struct{})
	var ran atomic.Bool
	go l.Invoke(func() {
		ran.Store(true)
		close(done)
	})
	deadline := time.Now().Add(2 * time.Second)
	for !ran.Load() && time.Now().Before(deadline) {
		l.Iterate()
	}
	select {
	case <-done:
	default:
		t.Fatal("Invoke never ran")
	}
}

func TestRunRequiresRealClock(t *testing.T) {
	l, _ := newVirtualLoop(0)
	if err := l.Run(); err != ErrVirtualRun {
		t.Fatalf("Run on virtual clock returned %v", err)
	}
}

func TestRunRealClockTimeout(t *testing.T) {
	l := NewLoop(RealClock{}, WithGranularity(time.Millisecond))
	var fires atomic.Int32
	l.TimeoutAdd(5*time.Millisecond, func(int) bool {
		if fires.Add(1) >= 3 {
			l.Quit()
			return false
		}
		return true
	})
	errCh := make(chan error, 1)
	go func() { errCh <- l.Run() }()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not quit")
	}
	if fires.Load() < 3 {
		t.Fatalf("fires = %d", fires.Load())
	}
}

func TestAdvancePanicsOnRealClock(t *testing.T) {
	l := NewLoop(RealClock{})
	defer func() {
		if recover() == nil {
			t.Fatal("Advance on a real clock should panic")
		}
	}()
	l.Advance(time.Second)
}

func TestConcurrentTimeoutAddRemove(t *testing.T) {
	l, _ := newVirtualLoop(0)
	var wg sync.WaitGroup
	ids := make([]SourceID, 100)
	for i := 0; i < 100; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids[i] = l.TimeoutAdd(time.Millisecond, func(int) bool { return true })
		}()
	}
	wg.Wait()
	seen := make(map[SourceID]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatal("duplicate source ID under concurrency")
		}
		seen[id] = true
	}
	for _, id := range ids {
		if !l.Remove(id) {
			t.Fatal("failed to remove concurrently added source")
		}
	}
}

func TestWatchLinesDeliversAndEOF(t *testing.T) {
	l, _ := newVirtualLoop(0)
	var lines []string
	var eof atomic.Bool
	r := strings.NewReader("one\ntwo\nthree\n")
	l.WatchLines(r, func(line string, err error) bool {
		if err == io.EOF {
			eof.Store(true)
			return false
		}
		lines = append(lines, line)
		return true
	})
	deadline := time.Now().Add(2 * time.Second)
	for !eof.Load() && time.Now().Before(deadline) {
		l.Iterate()
	}
	if len(lines) != 3 || lines[0] != "one" || lines[2] != "three" {
		t.Fatalf("lines = %v", lines)
	}
}

func TestWatchLinesCancel(t *testing.T) {
	l, _ := newVirtualLoop(0)
	var count atomic.Int32
	pr, pw := io.Pipe()
	w := l.WatchLines(pr, func(line string, err error) bool {
		count.Add(1)
		return true
	})
	pw.Write([]byte("a\n")) //nolint:errcheck
	deadline := time.Now().Add(2 * time.Second)
	for count.Load() == 0 && time.Now().Before(deadline) {
		l.Iterate()
	}
	w.Cancel()
	pw.Write([]byte("b\n")) //nolint:errcheck
	for i := 0; i < 50; i++ {
		l.Iterate()
		time.Sleep(time.Millisecond)
	}
	if count.Load() != 1 {
		t.Fatalf("callback ran %d times after cancel", count.Load())
	}
	pw.Close()
	pr.Close()
}

func TestWatchAcceptDeliversConnections(t *testing.T) {
	l, _ := newVirtualLoop(0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var got atomic.Int32
	l.WatchAccept(ln, func(conn net.Conn, err error) bool {
		if err != nil {
			return false
		}
		got.Add(1)
		conn.Close()
		return true
	})
	for i := 0; i < 3; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() < 3 && time.Now().Before(deadline) {
		l.Iterate()
	}
	if got.Load() != 3 {
		t.Fatalf("accepted %d connections", got.Load())
	}
}

func TestVirtualClockSetAndAdvance(t *testing.T) {
	vc := NewVirtualClock(epoch())
	if vc.Now() != epoch() {
		t.Fatal("initial time wrong")
	}
	vc.Advance(time.Minute)
	if vc.Now() != epoch().Add(time.Minute) {
		t.Fatal("Advance wrong")
	}
	vc.Set(epoch())
	if vc.Now() != epoch() {
		t.Fatal("Set wrong")
	}
}

func TestTimeoutAddValidation(t *testing.T) {
	l, _ := newVirtualLoop(0)
	for _, fn := range []func(){
		func() { l.TimeoutAdd(0, func(int) bool { return true }) },
		func() { l.TimeoutAdd(time.Second, nil) },
		func() { l.IdleAdd(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestWatchLineBatchesDeliversChunks(t *testing.T) {
	l, _ := newVirtualLoop(0)
	var lines []string
	var batches int
	var eof atomic.Bool
	r := strings.NewReader("one\ntwo\nthree\n")
	l.WatchLineBatches(r, func(batch []string, err error) bool {
		lines = append(lines, batch...)
		if len(batch) > 0 {
			batches++
		}
		if err == io.EOF {
			eof.Store(true)
			return false
		}
		return true
	})
	deadline := time.Now().Add(2 * time.Second)
	for !eof.Load() && time.Now().Before(deadline) {
		l.Iterate()
	}
	if len(lines) != 3 || lines[0] != "one" || lines[2] != "three" {
		t.Fatalf("lines = %v", lines)
	}
	// The whole reader fits one read, so one batch carried all lines.
	if batches != 1 {
		t.Fatalf("batches = %d", batches)
	}
}

func TestWatchLineBatchesCarriesPartialLines(t *testing.T) {
	l, _ := newVirtualLoop(0)
	var lines []string
	var eof atomic.Bool
	pr, pw := io.Pipe()
	l.WatchLineBatches(pr, func(batch []string, err error) bool {
		lines = append(lines, batch...)
		if err != nil {
			eof.Store(true)
			return false
		}
		return true
	})
	go func() {
		// A line split across three writes, a CRLF line, and an
		// unterminated trailing line that EOF must still deliver.
		pw.Write([]byte("hel"))         //nolint:errcheck
		pw.Write([]byte("lo wo"))       //nolint:errcheck
		pw.Write([]byte("rld\nsec"))    //nolint:errcheck
		pw.Write([]byte("ond\r\ntail")) //nolint:errcheck
		pw.Close()
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !eof.Load() && time.Now().Before(deadline) {
		l.Iterate()
	}
	want := []string{"hello world", "second", "tail"}
	if len(lines) != len(want) {
		t.Fatalf("lines = %q", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestWatchLineBatchesCancel(t *testing.T) {
	l, _ := newVirtualLoop(0)
	var count atomic.Int32
	pr, pw := io.Pipe()
	w := l.WatchLineBatches(pr, func(batch []string, err error) bool {
		count.Add(int32(len(batch)))
		return true
	})
	pw.Write([]byte("a\n")) //nolint:errcheck
	deadline := time.Now().Add(2 * time.Second)
	for count.Load() == 0 && time.Now().Before(deadline) {
		l.Iterate()
	}
	w.Cancel()
	pw.Write([]byte("b\n")) //nolint:errcheck
	for i := 0; i < 50; i++ {
		l.Iterate()
		time.Sleep(time.Millisecond)
	}
	if count.Load() != 1 {
		t.Fatalf("saw %d lines after cancel", count.Load())
	}
	pw.Close()
	pr.Close()
}

func TestWriteWatchByteAccounting(t *testing.T) {
	l, _ := newVirtualLoop(0)
	var sink bytes.Buffer
	mu := &lockedWriter{w: &sink}
	ww := l.WatchWriter(mu, 8, nil)
	ww.Send([]byte("hello\n"))
	ww.Send([]byte("world\n"))
	deadline := time.Now().Add(2 * time.Second)
	for !ww.Flushed() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !ww.Flushed() {
		t.Fatal("never flushed")
	}
	if ww.EnqueuedBytes() != 12 || ww.WrittenBytes() != 12 || ww.DroppedBytes() != 0 {
		t.Fatalf("bytes = %d/%d/%d", ww.EnqueuedBytes(), ww.WrittenBytes(), ww.DroppedBytes())
	}
	ww.Cancel()
	<-ww.Done()
}

// lockedWriter serializes writes for the race detector (the watch's writer
// goroutine vs. test assertions reading the buffer).
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
