// Package glib provides a small event-loop library modeled on the glib main
// loop that the original gscope was built on: timeout sources with
// lost-timeout accounting, idle sources, I/O watches, and cross-thread
// invocation. All callbacks for a Loop are dispatched on a single goroutine,
// mirroring the single-threaded GTK dispatch model the paper relies on
// (§4.3).
//
// Every time-dependent component takes a Clock so that the polling engine
// and everything above it can be driven deterministically in tests with a
// VirtualClock, while production use runs on the RealClock.
package glib

import (
	"sync"
	"time"
)

// Clock abstracts the source of time. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
}

// RealClock reads the wall clock.
type RealClock struct{}

// Now implements Clock using time.Now.
func (RealClock) Now() time.Time { return time.Now() }

// VirtualClock is a manually advanced clock for deterministic tests and
// simulations. The zero value starts at the Unix epoch.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a VirtualClock positioned at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Set moves the clock to t. Moving backwards is allowed but unusual; the
// loop treats a backwards move as "no timers due".
func (c *VirtualClock) Set(t time.Time) {
	c.mu.Lock()
	c.now = t
	c.mu.Unlock()
}

// Advance moves the clock forward by d and returns the new time.
func (c *VirtualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}
