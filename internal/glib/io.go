package glib

import (
	"bufio"
	"io"
	"net"
	"sync/atomic"
)

// The original gscope drives I/O through GTK's GIOChannel watches so that a
// single-threaded application handles both GUI and network events on one
// loop (§3.4, §4.3). Go's stdlib exposes blocking I/O rather than readiness
// callbacks, so each watch runs a reader goroutine that performs the
// blocking call and posts completions to the loop; the callback still always
// executes on the loop goroutine, preserving the single-threaded dispatch
// model the paper's programming style depends on.

// ReadFunc receives data read from a watched reader. data is valid only for
// the duration of the call. err is non-nil exactly once, when the stream
// ends (io.EOF) or fails; after an error the watch is removed regardless of
// the return value. Return false to cancel the watch early.
type ReadFunc func(data []byte, err error) bool

// LineFunc receives one line (without the trailing newline) from a watched
// reader. Semantics of err and the return value match ReadFunc.
type LineFunc func(line string, err error) bool

// AcceptFunc receives connections from a watched listener. A non-nil err
// means the listener failed or closed and the watch is removed. Return
// false to stop accepting.
type AcceptFunc func(conn net.Conn, err error) bool

// IOWatch is a handle to a reader or accept watch.
type IOWatch struct {
	cancel atomic.Bool
}

// Cancel stops delivering callbacks. The underlying blocking read is not
// interrupted (close the reader to unblock it), but no further callbacks
// will run.
func (w *IOWatch) Cancel() { w.cancel.Store(true) }

// WatchReader watches r and invokes fn on the loop goroutine with each chunk
// of data as it arrives, emulating a G_IO_IN watch.
func (l *Loop) WatchReader(r io.Reader, fn ReadFunc) *IOWatch {
	w := &IOWatch{}
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			if w.cancel.Load() {
				return
			}
			data := make([]byte, n)
			copy(data, buf[:n])
			done := make(chan bool, 1)
			l.Invoke(func() {
				if w.cancel.Load() {
					done <- false
					return
				}
				keep := fn(data, err)
				if err != nil {
					keep = false
				}
				if !keep {
					w.cancel.Store(true)
				}
				done <- keep
			})
			if !<-done || err != nil {
				return
			}
		}
	}()
	return w
}

// WatchLines watches r and delivers it line-by-line; this is the framing
// used by the tuple streaming protocol (§3.3).
func (l *Loop) WatchLines(r io.Reader, fn LineFunc) *IOWatch {
	w := &IOWatch{}
	go func() {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		for sc.Scan() {
			if w.cancel.Load() {
				return
			}
			line := sc.Text()
			done := make(chan bool, 1)
			l.Invoke(func() {
				if w.cancel.Load() {
					done <- false
					return
				}
				keep := fn(line, nil)
				if !keep {
					w.cancel.Store(true)
				}
				done <- keep
			})
			if !<-done {
				return
			}
		}
		err := sc.Err()
		if err == nil {
			err = io.EOF
		}
		if w.cancel.Load() {
			return
		}
		l.Invoke(func() {
			if !w.cancel.Load() {
				fn("", err)
				w.cancel.Store(true)
			}
		})
	}()
	return w
}

// WatchAccept watches a listener and delivers accepted connections on the
// loop goroutine, so a single-threaded server (§4.4) can manage all clients
// without locks.
func (l *Loop) WatchAccept(ln net.Listener, fn AcceptFunc) *IOWatch {
	w := &IOWatch{}
	go func() {
		for {
			conn, err := ln.Accept()
			if w.cancel.Load() {
				if conn != nil {
					conn.Close()
				}
				return
			}
			done := make(chan bool, 1)
			l.Invoke(func() {
				if w.cancel.Load() {
					if conn != nil {
						conn.Close()
					}
					done <- false
					return
				}
				keep := fn(conn, err)
				if err != nil {
					keep = false
				}
				if !keep {
					w.cancel.Store(true)
				}
				done <- keep
			})
			if !<-done || err != nil {
				return
			}
		}
	}()
	return w
}
