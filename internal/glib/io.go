package glib

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"strings"
	"sync/atomic"
)

// The original gscope drives I/O through GTK's GIOChannel watches so that a
// single-threaded application handles both GUI and network events on one
// loop (§3.4, §4.3). Go's stdlib exposes blocking I/O rather than readiness
// callbacks, so each watch runs a reader goroutine that performs the
// blocking call and posts completions to the loop; the callback still always
// executes on the loop goroutine, preserving the single-threaded dispatch
// model the paper's programming style depends on.

// ReadFunc receives data read from a watched reader. data is valid only for
// the duration of the call. err is non-nil exactly once, when the stream
// ends (io.EOF) or fails; after an error the watch is removed regardless of
// the return value. Return false to cancel the watch early.
type ReadFunc func(data []byte, err error) bool

// LineFunc receives one line (without the trailing newline) from a watched
// reader. Semantics of err and the return value match ReadFunc.
type LineFunc func(line string, err error) bool

// LineBatchFunc receives every complete line found in one read chunk —
// the batch framing used by the streaming hot path, which amortizes one
// loop dispatch over a whole network read instead of paying it per line.
// lines is valid only for the duration of the call. Semantics of err and
// the return value match ReadFunc; the final callback may carry both
// trailing lines and the terminal error.
type LineBatchFunc func(lines []string, err error) bool

// AcceptFunc receives connections from a watched listener. A non-nil err
// means the listener failed or closed and the watch is removed. Return
// false to stop accepting.
type AcceptFunc func(conn net.Conn, err error) bool

// IOWatch is a handle to a reader or accept watch.
type IOWatch struct {
	cancel atomic.Bool
	dead   chan struct{}
}

func newIOWatch() *IOWatch { return &IOWatch{dead: make(chan struct{})} }

// Cancel stops delivering callbacks. The underlying blocking read is not
// interrupted (close the reader to unblock it), but no further callbacks
// will run.
func (w *IOWatch) Cancel() {
	if w.cancel.CompareAndSwap(false, true) {
		close(w.dead)
	}
}

// wait blocks until the invoked callback reports back or the watch is
// canceled. The cancel arm matters when the watch is abandoned on a loop
// that has stopped dispatching (a daemon quitting, a test done iterating
// its virtual clock): the posted callback will never run, and without it
// the reader goroutine would stay pinned on the channel forever.
func (w *IOWatch) wait(done <-chan bool) bool {
	select {
	case keep := <-done:
		return keep
	case <-w.dead:
		return false
	}
}

// WatchReader watches r and invokes fn on the loop goroutine with each chunk
// of data as it arrives, emulating a G_IO_IN watch.
func (l *Loop) WatchReader(r io.Reader, fn ReadFunc) *IOWatch {
	return l.WatchReaderSize(r, 4096, fn)
}

// WatchReaderSize is WatchReader with a caller-chosen read buffer size, for
// hot streams (a publisher's binary tuple feed) where 4 KiB reads would pay
// one loop dispatch per few thousand tuples.
func (l *Loop) WatchReaderSize(r io.Reader, size int, fn ReadFunc) *IOWatch {
	w := newIOWatch()
	go func() {
		buf := make([]byte, size)
		for {
			n, err := r.Read(buf)
			if w.cancel.Load() {
				return
			}
			data := make([]byte, n)
			copy(data, buf[:n])
			done := make(chan bool, 1)
			l.Invoke(func() {
				if w.cancel.Load() {
					done <- false
					return
				}
				keep := fn(data, err)
				if err != nil {
					keep = false
				}
				if !keep {
					w.Cancel()
				}
				done <- keep
			})
			if !w.wait(done) || err != nil {
				return
			}
		}
	}()
	return w
}

// WatchLines watches r and delivers it line-by-line; this is the framing
// used by the tuple streaming protocol (§3.3).
func (l *Loop) WatchLines(r io.Reader, fn LineFunc) *IOWatch {
	w := newIOWatch()
	go func() {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		for sc.Scan() {
			if w.cancel.Load() {
				return
			}
			line := sc.Text()
			done := make(chan bool, 1)
			l.Invoke(func() {
				if w.cancel.Load() {
					done <- false
					return
				}
				keep := fn(line, nil)
				if !keep {
					w.Cancel()
				}
				done <- keep
			})
			if !w.wait(done) {
				return
			}
		}
		err := sc.Err()
		if err == nil {
			err = io.EOF
		}
		if w.cancel.Load() {
			return
		}
		l.Invoke(func() {
			if !w.cancel.Load() {
				fn("", err)
				w.Cancel()
			}
		})
	}()
	return w
}

// maxWatchedLine bounds a single line in a batch watch, matching the
// line-by-line watch's bufio.Scanner limit.
const maxWatchedLine = 1024 * 1024

// WatchLineBatches watches r and delivers all complete lines of each read
// chunk in one callback, so a reader that keeps up with a fast peer pays
// one loop dispatch per network read rather than per line. A line spanning
// reads is carried over and delivered with the chunk that completes it; a
// line longer than the scanner limit ends the watch with an error, like
// WatchLines. At end of stream any unterminated trailing line is delivered
// together with the terminal error.
func (l *Loop) WatchLineBatches(r io.Reader, fn LineBatchFunc) *IOWatch {
	w := newIOWatch()
	deliver := func(lines []string, err error) bool {
		done := make(chan bool, 1)
		l.Invoke(func() {
			if w.cancel.Load() {
				done <- false
				return
			}
			keep := fn(lines, err)
			if err != nil {
				keep = false
			}
			if !keep {
				w.Cancel()
			}
			done <- keep
		})
		return w.wait(done)
	}
	go func() {
		buf := make([]byte, 64*1024)
		var carry []byte
		var lines []string
		for {
			n, err := r.Read(buf)
			if w.cancel.Load() {
				return
			}
			data := buf[:n]
			lines = lines[:0]
			for {
				i := bytes.IndexByte(data, '\n')
				if i < 0 {
					break
				}
				var line string
				if len(carry) > 0 {
					carry = append(carry, data[:i]...)
					line = string(carry)
					carry = carry[:0]
				} else {
					line = string(data[:i])
				}
				lines = append(lines, strings.TrimSuffix(line, "\r"))
				data = data[i+1:]
			}
			carry = append(carry, data...)
			if err == nil && len(carry) > maxWatchedLine {
				err = bufio.ErrTooLong
			}
			if err != nil {
				if len(carry) > 0 && err == io.EOF {
					// An unterminated final line is still a line, the
					// way bufio.Scanner treats it.
					lines = append(lines, strings.TrimSuffix(string(carry), "\r"))
				}
				deliver(lines, err)
				return
			}
			if len(lines) == 0 {
				continue
			}
			if !deliver(lines, nil) {
				return
			}
		}
	}()
	return w
}

// WatchAccept watches a listener and delivers accepted connections on the
// loop goroutine, so a single-threaded server (§4.4) can manage all clients
// without locks.
func (l *Loop) WatchAccept(ln net.Listener, fn AcceptFunc) *IOWatch {
	w := newIOWatch()
	go func() {
		for {
			conn, err := ln.Accept()
			if w.cancel.Load() {
				if conn != nil {
					conn.Close()
				}
				return
			}
			done := make(chan bool, 1)
			l.Invoke(func() {
				if w.cancel.Load() {
					if conn != nil {
						conn.Close()
					}
					done <- false
					return
				}
				keep := fn(conn, err)
				if err != nil {
					keep = false
				}
				if !keep {
					w.Cancel()
				}
				done <- keep
			})
			if !w.wait(done) || err != nil {
				return
			}
		}
	}()
	return w
}
