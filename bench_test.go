package gscope

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index):
//
//	FIG1-FIG3   — widget screenshots           → out/fig*.png
//	FIG4, FIG5  — the TCP vs ECN experiment    → out/fig4_tcp.png, out/fig5_ecn.png
//	TAB-A1/A2   — §4.6 CPU overhead at 10/50ms → overhead% metric
//	TAB-A3      — §4.6 per-signal overhead     → overhead% per signal count
//	TAB-A4      — §4.5 lost-timeout handling   → compensated sweep metrics
//
// plus ablation benches for the design choices DESIGN.md calls out
// (trigger alignment, RED vs DropTail, timer granularity, filtering) and
// microbenches of the hot paths. Figures are written once per `go test
// -bench` run into out/.

import (
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/draw"
	"repro/internal/figures"
	"repro/internal/glib"
	"repro/internal/loadgen"
	"repro/internal/mxtraf"
	"repro/internal/netscope"
	"repro/internal/netsim"
	"repro/internal/tuple"
)

const outDir = "out"

var outOnce sync.Once

func writeArtifact(b *testing.B, name string, s *draw.Surface) {
	b.Helper()
	outOnce.Do(func() { os.MkdirAll(outDir, 0o755) }) //nolint:errcheck
	path := outDir + "/" + name
	if err := s.WritePNG(path); err != nil {
		b.Fatalf("writing %s: %v", path, err)
	}
}

// --- FIG1–FIG3: widget screenshots -----------------------------------------

func BenchmarkFigure1ScopeWidget(b *testing.B) {
	var frame *draw.Surface
	for i := 0; i < b.N; i++ {
		f, err := figures.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		frame = f
	}
	writeArtifact(b, "fig1_scope_widget.png", frame)
}

func BenchmarkFigure2SignalParams(b *testing.B) {
	var frame *draw.Surface
	for i := 0; i < b.N; i++ {
		f, err := figures.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		frame = f
	}
	writeArtifact(b, "fig2_signal_params.png", frame)
}

func BenchmarkFigure3ControlParams(b *testing.B) {
	var frame *draw.Surface
	for i := 0; i < b.N; i++ {
		f, err := figures.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		frame = f
	}
	writeArtifact(b, "fig3_control_params.png", frame)
}

// --- FIG4/FIG5: the TCP vs ECN experiment ----------------------------------

func benchTCPExperiment(b *testing.B, ecn bool, png string) {
	var res *figures.TCPResult
	for i := 0; i < b.N; i++ {
		cfg := figures.DefaultTCPExperiment(ecn)
		r, err := figures.RunTCPExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(float64(res.CwndMin1Hits), "cwnd-floor-hits")
	b.ReportMetric(float64(res.TimeoutsDuring8), "obsflow-timeouts-8")
	b.ReportMetric(float64(res.TimeoutsDuring16), "obsflow-timeouts-16")
	b.ReportMetric(float64(res.TotalTimeouts), "all-timeouts")
	b.ReportMetric(res.MeanCwnd8, "mean-cwnd-8")
	b.ReportMetric(res.MeanCwnd16, "mean-cwnd-16")
	writeArtifact(b, png, res.Frame)
}

func BenchmarkFigure4TCP(b *testing.B) { benchTCPExperiment(b, false, "fig4_tcp.png") }
func BenchmarkFigure5ECN(b *testing.B) { benchTCPExperiment(b, true, "fig5_ecn.png") }

// --- TAB-A1/A2: §4.6 CPU overhead vs polling period ------------------------

// runOverhead measures the §4.6 ratio with the real clock: a spin loop
// with and without a scope polling n integer signals at the given period.
func runOverhead(b *testing.B, period time.Duration, n int) float64 {
	var stop func()
	start := func() {
		loop := glib.NewLoop(glib.RealClock{}, glib.WithGranularity(period))
		scope := core.New(loop, "bench", 600, 200)
		vars := make([]core.IntVar, n)
		for i := 0; i < n; i++ {
			if _, err := scope.AddSignal(core.Sig{Name: fmt.Sprintf("s%d", i), Source: &vars[i]}); err != nil {
				b.Fatal(err)
			}
		}
		if err := scope.SetPollingMode(period); err != nil {
			b.Fatal(err)
		}
		if err := scope.StartPolling(); err != nil {
			b.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			loop.Run() //nolint:errcheck
			close(done)
		}()
		stop = func() {
			loop.Quit()
			<-done
		}
	}
	res := loadgen.MeasureRepeated(3, 150*time.Millisecond, start, func() { stop() })
	oh := res.OverheadPercent()
	if oh < 0 {
		oh = 0 // scheduler noise can make the loaded run "faster"
	}
	return oh
}

func BenchmarkOverheadPolling10ms(b *testing.B) {
	var oh float64
	for i := 0; i < b.N; i++ {
		oh = runOverhead(b, 10*time.Millisecond, 8)
	}
	b.ReportMetric(oh, "overhead-%")
	b.ReportMetric(2.0, "paper-bound-%")
}

func BenchmarkOverheadPolling50ms(b *testing.B) {
	var oh float64
	for i := 0; i < b.N; i++ {
		oh = runOverhead(b, 50*time.Millisecond, 8)
	}
	b.ReportMetric(oh, "overhead-%")
	b.ReportMetric(1.0, "paper-bound-%")
}

// --- TAB-A3: §4.6 per-signal overhead --------------------------------------

func BenchmarkOverheadPerSignal(b *testing.B) {
	for _, n := range []int{1, 8, 16, 32} {
		n := n
		b.Run(fmt.Sprintf("signals=%d", n), func(b *testing.B) {
			var oh float64
			for i := 0; i < b.N; i++ {
				oh = runOverhead(b, 10*time.Millisecond, n)
			}
			b.ReportMetric(oh, "overhead-%")
		})
	}
}

// --- TAB-A4: §4.5 lost-timeout compensation --------------------------------

func BenchmarkLostTimeoutCompensation(b *testing.B) {
	// Inject timer starvation on a virtual clock and verify/measure that
	// the sweep advances by wall time, not by dispatch count.
	vc := glib.NewVirtualClock(time.Unix(0, 0))
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	scope := core.New(loop, "bench", 600, 200)
	var v core.IntVar
	if _, err := scope.AddSignal(core.Sig{Name: "v", Source: &v}); err != nil {
		b.Fatal(err)
	}
	if err := scope.SetPollingMode(10 * time.Millisecond); err != nil {
		b.Fatal(err)
	}
	if err := scope.StartPolling(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate clean ticks with 50ms stalls.
		loop.Advance(10 * time.Millisecond)
		vc.Set(vc.Now().Add(50 * time.Millisecond))
		loop.Iterate()
	}
	st := scope.Stats()
	if st.Slots != st.Polls+st.LostTicks {
		b.Fatalf("sweep not compensated: slots=%d polls=%d lost=%d",
			st.Slots, st.Polls, st.LostTicks)
	}
	b.ReportMetric(float64(st.LostTicks)/float64(st.Polls), "lost-ticks/poll")
}

// --- Ablations --------------------------------------------------------------

// BenchmarkAblationGranularity quantifies §4.5/§6: finer kernel ticks let
// the same 10ms polling fire closer to schedule. The metric is the mean
// quantization-induced deadline slip.
func BenchmarkAblationGranularity(b *testing.B) {
	for _, g := range []time.Duration{10 * time.Millisecond, time.Millisecond, 0} {
		g := g
		name := "ideal"
		if g > 0 {
			name = g.String()
		}
		b.Run("tick="+name, func(b *testing.B) {
			var slip time.Duration
			var fires int
			for i := 0; i < b.N; i++ {
				vc := glib.NewVirtualClock(time.Unix(0, 0))
				loop := glib.NewLoop(vc, glib.WithGranularity(g))
				var last time.Time
				scheduledGap := 15 * time.Millisecond
				loop.TimeoutAdd(scheduledGap, func(int) bool {
					now := vc.Now()
					if !last.IsZero() {
						gap := now.Sub(last)
						if gap > scheduledGap {
							slip += gap - scheduledGap
						}
					}
					last = now
					fires++
					return true
				})
				loop.Advance(3 * time.Second)
			}
			if fires > 0 {
				b.ReportMetric(float64(slip.Microseconds())/float64(fires), "slip-us/fire")
			}
		})
	}
}

// BenchmarkAblationREDvsDropTail isolates the router discipline: identical
// ECN-capable senders through both queues. RED+ECN should eliminate
// timeouts; DropTail cannot (ECN negotiation never helps if the router
// only drops).
func BenchmarkAblationREDvsDropTail(b *testing.B) {
	for _, red := range []bool{false, true} {
		red := red
		name := "droptail"
		if red {
			name = "red"
		}
		b.Run(name, func(b *testing.B) {
			var timeouts int64
			for i := 0; i < b.N; i++ {
				cfg := netsim.DefaultDumbbell()
				cfg.RED = red
				cfg.TCP.ECN = true
				d := netsim.NewDumbbell(cfg)
				for f := 0; f < 16; f++ {
					at := time.Duration(f) * 100 * time.Millisecond
					d.Sim.At(at, func() { d.AddElephant() })
				}
				d.Sim.RunUntil(30 * time.Second)
				timeouts = d.TotalTimeouts()
			}
			b.ReportMetric(float64(timeouts), "timeouts")
		})
	}
}

// BenchmarkAblationTrigger measures the §6 trigger extension's render cost
// against the plain scrolling sweep.
func BenchmarkAblationTrigger(b *testing.B) {
	for _, trig := range []bool{false, true} {
		trig := trig
		name := "off"
		if trig {
			name = "on"
		}
		b.Run("trigger="+name, func(b *testing.B) {
			rig := figures.NewRig("bench", 600, 200)
			var v core.IntVar
			sig, err := rig.Scope.AddSignal(core.Sig{Name: "s", Source: &v})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 2000; i++ {
				sig.Trace().Push(float64(50 + 40*((i/20)%2)))
			}
			if trig {
				rig.Scope.SetTrigger(&core.Trigger{Signal: "s", Level: 50, Rising: true})
			}
			s := draw.NewSurface(600, 200)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rig.Scope.Render(s, s.Bounds())
			}
		})
	}
}

// BenchmarkAblationFilter measures the low-pass filter's per-poll cost.
func BenchmarkAblationFilter(b *testing.B) {
	for _, alpha := range []float64{0, 0.5} {
		alpha := alpha
		b.Run(fmt.Sprintf("alpha=%v", alpha), func(b *testing.B) {
			rig := figures.NewRig("bench", 600, 200)
			var v core.IntVar
			if _, err := rig.Scope.AddSignal(core.Sig{Name: "s", Source: &v, FilterAlpha: alpha}); err != nil {
				b.Fatal(err)
			}
			if err := rig.Scope.SetPollingMode(10 * time.Millisecond); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rig.Scope.Step(0)
			}
		})
	}
}

// --- Microbenches of the hot paths ------------------------------------------

func BenchmarkScopePoll(b *testing.B) {
	for _, n := range []int{1, 8, 32} {
		n := n
		b.Run(fmt.Sprintf("signals=%d", n), func(b *testing.B) {
			rig := figures.NewRig("bench", 600, 200)
			vars := make([]core.IntVar, n)
			for i := 0; i < n; i++ {
				if _, err := rig.Scope.AddSignal(core.Sig{Name: fmt.Sprintf("s%d", i), Source: &vars[i]}); err != nil {
					b.Fatal(err)
				}
			}
			if err := rig.Scope.SetPollingMode(10 * time.Millisecond); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rig.Scope.Step(0)
			}
		})
	}
}

func BenchmarkRenderCanvas(b *testing.B) {
	rig := figures.NewRig("bench", 600, 200)
	var v core.IntVar
	sig, err := rig.Scope.AddSignal(core.Sig{Name: "s", Source: &v})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		sig.Trace().Push(float64(i % 100))
	}
	s := draw.NewSurface(600, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.Scope.Render(s, s.Bounds())
	}
}

func BenchmarkFreqDomainRender(b *testing.B) {
	rig := figures.NewRig("bench", 600, 200)
	var v core.IntVar
	sig, err := rig.Scope.AddSignal(core.Sig{Name: "s", Source: &v})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		sig.Trace().Push(float64(i % 100))
	}
	rig.Scope.SetDomain(core.FreqDomain)
	s := draw.NewSurface(600, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.Scope.Render(s, s.Bounds())
	}
}

func BenchmarkTupleParse(b *testing.B) {
	line := "123456 42.125 CWND"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tuple.Parse(line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeedPushTake(b *testing.B) {
	f := core.NewFeed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := time.Duration(i) * time.Millisecond
		f.Push(at, "x", 1)
		if i%64 == 63 {
			f.Take(at)
		}
	}
}

func BenchmarkEventAggregation(b *testing.B) {
	rig := figures.NewRig("bench", 600, 200)
	if _, err := rig.Scope.AddSignal(core.Sig{Name: "lat", Agg: core.AggMax}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.Scope.Event("lat", float64(i&0xff))
		if i%100 == 99 {
			rig.Scope.Step(0)
		}
	}
}

// BenchmarkHubFanOut measures the netscope hub's fan-out path: one merged
// tuple stream broadcast to M loopback-TCP subscribers, each drained by its
// own reader. The timed section covers Inject through every subscriber's
// queue fully flushing, so ns/op is the true per-tuple fan-out cost.
func BenchmarkHubFanOut(b *testing.B) {
	for _, subs := range []int{1, 4, 16} {
		subs := subs
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			vc := glib.NewVirtualClock(time.Unix(0, 0))
			loop := glib.NewLoop(vc, glib.WithGranularity(0))
			srv := netscope.NewServer(loop)
			srv.SetSnapshotWindow(0)             // measure deltas, not history replay
			srv.SetSubscriberQueueLimit(1 << 20) // count drops, don't hide them
			subAddr, err := srv.ListenSubscribers("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			conns := make([]net.Conn, subs)
			for i := range conns {
				conn, err := net.Dial("tcp", subAddr.String())
				if err != nil {
					b.Fatal(err)
				}
				conns[i] = conn
				wg.Add(1)
				go func() {
					defer wg.Done()
					io.Copy(io.Discard, conn) //nolint:errcheck
				}()
			}
			for srv.Subscribers() < subs {
				loop.Iterate()
				time.Sleep(time.Millisecond)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srv.Inject(tuple.Tuple{Time: int64(i), Value: float64(i & 0xff), Name: "s"})
			}
			// Wait on completed writes (handshake chunk + one per tuple,
			// per subscriber); the queue alone reads empty while a taken
			// batch is still going out on the socket.
			target := int64(subs) * int64(b.N+1)
			for {
				_, _, _, dropped := srv.SubscriberStats()
				if srv.SubscriberWritten()+dropped >= target {
					break
				}
				time.Sleep(50 * time.Microsecond)
			}
			b.StopTimer()
			_, _, published, dropped := srv.SubscriberStats()
			b.ReportMetric(float64(subs), "fanout")
			b.ReportMetric(float64(published*int64(subs))/b.Elapsed().Seconds(), "deliveries/s")
			b.ReportMetric(float64(dropped), "dropped")
			srv.Close()
			for _, c := range conns {
				c.Close()
			}
			wg.Wait()
		})
	}
}

// BenchmarkNetsimThroughput reports how many simulated seconds of the
// 16-elephant dumbbell fit in one wall-clock second.
func BenchmarkNetsimThroughput(b *testing.B) {
	cfg := netsim.DefaultDumbbell()
	d := netsim.NewDumbbell(cfg)
	for f := 0; f < 16; f++ {
		d.AddElephant()
	}
	horizon := time.Duration(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		horizon += 100 * time.Millisecond
		d.Sim.RunUntil(horizon)
	}
	b.ReportMetric(float64(d.Sim.Processed())/float64(b.N), "events/op")
}

// BenchmarkMxtrafSnapshot measures the metrics path mxtraf exports to the
// scope each poll.
func BenchmarkMxtrafSnapshot(b *testing.B) {
	g := mxtraf.New(mxtraf.DefaultConfig())
	g.SetElephants(8)
	g.Sim().RunUntil(2 * time.Second)
	at := g.Sim().Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += time.Millisecond
		g.Sim().RunUntil(at)
		g.Snapshot()
	}
}
