package gscope

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index):
//
//	FIG1-FIG3   — widget screenshots           → out/fig*.png
//	FIG4, FIG5  — the TCP vs ECN experiment    → out/fig4_tcp.png, out/fig5_ecn.png
//	TAB-A1/A2   — §4.6 CPU overhead at 10/50ms → overhead% metric
//	TAB-A3      — §4.6 per-signal overhead     → overhead% per signal count
//	TAB-A4      — §4.5 lost-timeout handling   → compensated sweep metrics
//
// plus ablation benches for the design choices DESIGN.md calls out
// (trigger alignment, RED vs DropTail, timer granularity, filtering) and
// microbenches of the hot paths. Figures are written once per `go test
// -bench` run into out/.

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/draw"
	"repro/internal/figures"
	"repro/internal/glib"
	"repro/internal/loadgen"
	"repro/internal/mxtraf"
	"repro/internal/netscope"
	"repro/internal/netsim"
	"repro/internal/reclog"
	"repro/internal/tuple"
	"repro/internal/webscope"
)

const outDir = "out"

var outOnce sync.Once

func writeArtifact(b *testing.B, name string, s *draw.Surface) {
	b.Helper()
	outOnce.Do(func() { os.MkdirAll(outDir, 0o755) }) //nolint:errcheck
	path := outDir + "/" + name
	if err := s.WritePNG(path); err != nil {
		b.Fatalf("writing %s: %v", path, err)
	}
}

// --- FIG1–FIG3: widget screenshots -----------------------------------------

func BenchmarkFigure1ScopeWidget(b *testing.B) {
	var frame *draw.Surface
	for i := 0; i < b.N; i++ {
		f, err := figures.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		frame = f
	}
	writeArtifact(b, "fig1_scope_widget.png", frame)
}

func BenchmarkFigure2SignalParams(b *testing.B) {
	var frame *draw.Surface
	for i := 0; i < b.N; i++ {
		f, err := figures.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		frame = f
	}
	writeArtifact(b, "fig2_signal_params.png", frame)
}

func BenchmarkFigure3ControlParams(b *testing.B) {
	var frame *draw.Surface
	for i := 0; i < b.N; i++ {
		f, err := figures.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		frame = f
	}
	writeArtifact(b, "fig3_control_params.png", frame)
}

// --- FIG4/FIG5: the TCP vs ECN experiment ----------------------------------

func benchTCPExperiment(b *testing.B, ecn bool, png string) {
	var res *figures.TCPResult
	for i := 0; i < b.N; i++ {
		cfg := figures.DefaultTCPExperiment(ecn)
		r, err := figures.RunTCPExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(float64(res.CwndMin1Hits), "cwnd-floor-hits")
	b.ReportMetric(float64(res.TimeoutsDuring8), "obsflow-timeouts-8")
	b.ReportMetric(float64(res.TimeoutsDuring16), "obsflow-timeouts-16")
	b.ReportMetric(float64(res.TotalTimeouts), "all-timeouts")
	b.ReportMetric(res.MeanCwnd8, "mean-cwnd-8")
	b.ReportMetric(res.MeanCwnd16, "mean-cwnd-16")
	writeArtifact(b, png, res.Frame)
}

func BenchmarkFigure4TCP(b *testing.B) { benchTCPExperiment(b, false, "fig4_tcp.png") }
func BenchmarkFigure5ECN(b *testing.B) { benchTCPExperiment(b, true, "fig5_ecn.png") }

// --- TAB-A1/A2: §4.6 CPU overhead vs polling period ------------------------

// runOverhead measures the §4.6 ratio with the real clock: a spin loop
// with and without a scope polling n integer signals at the given period.
func runOverhead(b *testing.B, period time.Duration, n int) float64 {
	var stop func()
	start := func() {
		loop := glib.NewLoop(glib.RealClock{}, glib.WithGranularity(period))
		scope := core.New(loop, "bench", 600, 200)
		vars := make([]core.IntVar, n)
		for i := 0; i < n; i++ {
			if _, err := scope.AddSignal(core.Sig{Name: fmt.Sprintf("s%d", i), Source: &vars[i]}); err != nil {
				b.Fatal(err)
			}
		}
		if err := scope.SetPollingMode(period); err != nil {
			b.Fatal(err)
		}
		if err := scope.StartPolling(); err != nil {
			b.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			loop.Run() //nolint:errcheck
			close(done)
		}()
		stop = func() {
			loop.Quit()
			<-done
		}
	}
	res := loadgen.MeasureRepeated(3, 150*time.Millisecond, start, func() { stop() })
	oh := res.OverheadPercent()
	if oh < 0 {
		oh = 0 // scheduler noise can make the loaded run "faster"
	}
	return oh
}

func BenchmarkOverheadPolling10ms(b *testing.B) {
	var oh float64
	for i := 0; i < b.N; i++ {
		oh = runOverhead(b, 10*time.Millisecond, 8)
	}
	b.ReportMetric(oh, "overhead-%")
	b.ReportMetric(2.0, "paper-bound-%")
}

func BenchmarkOverheadPolling50ms(b *testing.B) {
	var oh float64
	for i := 0; i < b.N; i++ {
		oh = runOverhead(b, 50*time.Millisecond, 8)
	}
	b.ReportMetric(oh, "overhead-%")
	b.ReportMetric(1.0, "paper-bound-%")
}

// --- TAB-A3: §4.6 per-signal overhead --------------------------------------

func BenchmarkOverheadPerSignal(b *testing.B) {
	for _, n := range []int{1, 8, 16, 32} {
		n := n
		b.Run(fmt.Sprintf("signals=%d", n), func(b *testing.B) {
			var oh float64
			for i := 0; i < b.N; i++ {
				oh = runOverhead(b, 10*time.Millisecond, n)
			}
			b.ReportMetric(oh, "overhead-%")
		})
	}
}

// --- TAB-A4: §4.5 lost-timeout compensation --------------------------------

func BenchmarkLostTimeoutCompensation(b *testing.B) {
	// Inject timer starvation on a virtual clock and verify/measure that
	// the sweep advances by wall time, not by dispatch count.
	vc := glib.NewVirtualClock(time.Unix(0, 0))
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	scope := core.New(loop, "bench", 600, 200)
	var v core.IntVar
	if _, err := scope.AddSignal(core.Sig{Name: "v", Source: &v}); err != nil {
		b.Fatal(err)
	}
	if err := scope.SetPollingMode(10 * time.Millisecond); err != nil {
		b.Fatal(err)
	}
	if err := scope.StartPolling(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate clean ticks with 50ms stalls.
		loop.Advance(10 * time.Millisecond)
		vc.Set(vc.Now().Add(50 * time.Millisecond))
		loop.Iterate()
	}
	st := scope.Stats()
	if st.Slots != st.Polls+st.LostTicks {
		b.Fatalf("sweep not compensated: slots=%d polls=%d lost=%d",
			st.Slots, st.Polls, st.LostTicks)
	}
	b.ReportMetric(float64(st.LostTicks)/float64(st.Polls), "lost-ticks/poll")
}

// --- Ablations --------------------------------------------------------------

// BenchmarkAblationGranularity quantifies §4.5/§6: finer kernel ticks let
// the same 10ms polling fire closer to schedule. The metric is the mean
// quantization-induced deadline slip.
func BenchmarkAblationGranularity(b *testing.B) {
	for _, g := range []time.Duration{10 * time.Millisecond, time.Millisecond, 0} {
		g := g
		name := "ideal"
		if g > 0 {
			name = g.String()
		}
		b.Run("tick="+name, func(b *testing.B) {
			var slip time.Duration
			var fires int
			for i := 0; i < b.N; i++ {
				vc := glib.NewVirtualClock(time.Unix(0, 0))
				loop := glib.NewLoop(vc, glib.WithGranularity(g))
				var last time.Time
				scheduledGap := 15 * time.Millisecond
				loop.TimeoutAdd(scheduledGap, func(int) bool {
					now := vc.Now()
					if !last.IsZero() {
						gap := now.Sub(last)
						if gap > scheduledGap {
							slip += gap - scheduledGap
						}
					}
					last = now
					fires++
					return true
				})
				loop.Advance(3 * time.Second)
			}
			if fires > 0 {
				b.ReportMetric(float64(slip.Microseconds())/float64(fires), "slip-us/fire")
			}
		})
	}
}

// BenchmarkAblationREDvsDropTail isolates the router discipline: identical
// ECN-capable senders through both queues. RED+ECN should eliminate
// timeouts; DropTail cannot (ECN negotiation never helps if the router
// only drops).
func BenchmarkAblationREDvsDropTail(b *testing.B) {
	for _, red := range []bool{false, true} {
		red := red
		name := "droptail"
		if red {
			name = "red"
		}
		b.Run(name, func(b *testing.B) {
			var timeouts int64
			for i := 0; i < b.N; i++ {
				cfg := netsim.DefaultDumbbell()
				cfg.RED = red
				cfg.TCP.ECN = true
				d := netsim.NewDumbbell(cfg)
				for f := 0; f < 16; f++ {
					at := time.Duration(f) * 100 * time.Millisecond
					d.Sim.At(at, func() { d.AddElephant() })
				}
				d.Sim.RunUntil(30 * time.Second)
				timeouts = d.TotalTimeouts()
			}
			b.ReportMetric(float64(timeouts), "timeouts")
		})
	}
}

// BenchmarkAblationTrigger measures the §6 trigger extension's render cost
// against the plain scrolling sweep.
func BenchmarkAblationTrigger(b *testing.B) {
	for _, trig := range []bool{false, true} {
		trig := trig
		name := "off"
		if trig {
			name = "on"
		}
		b.Run("trigger="+name, func(b *testing.B) {
			rig := figures.NewRig("bench", 600, 200)
			var v core.IntVar
			sig, err := rig.Scope.AddSignal(core.Sig{Name: "s", Source: &v})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 2000; i++ {
				sig.Trace().Push(float64(50 + 40*((i/20)%2)))
			}
			if trig {
				rig.Scope.SetTrigger(&core.Trigger{Signal: "s", Level: 50, Rising: true})
			}
			s := draw.NewSurface(600, 200)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rig.Scope.Render(s, s.Bounds())
			}
		})
	}
}

// BenchmarkAblationFilter measures the low-pass filter's per-poll cost.
func BenchmarkAblationFilter(b *testing.B) {
	for _, alpha := range []float64{0, 0.5} {
		alpha := alpha
		b.Run(fmt.Sprintf("alpha=%v", alpha), func(b *testing.B) {
			rig := figures.NewRig("bench", 600, 200)
			var v core.IntVar
			if _, err := rig.Scope.AddSignal(core.Sig{Name: "s", Source: &v, FilterAlpha: alpha}); err != nil {
				b.Fatal(err)
			}
			if err := rig.Scope.SetPollingMode(10 * time.Millisecond); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rig.Scope.Step(0)
			}
		})
	}
}

// --- Microbenches of the hot paths ------------------------------------------

func BenchmarkScopePoll(b *testing.B) {
	for _, n := range []int{1, 8, 32} {
		n := n
		b.Run(fmt.Sprintf("signals=%d", n), func(b *testing.B) {
			rig := figures.NewRig("bench", 600, 200)
			vars := make([]core.IntVar, n)
			for i := 0; i < n; i++ {
				if _, err := rig.Scope.AddSignal(core.Sig{Name: fmt.Sprintf("s%d", i), Source: &vars[i]}); err != nil {
					b.Fatal(err)
				}
			}
			if err := rig.Scope.SetPollingMode(10 * time.Millisecond); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rig.Scope.Step(0)
			}
		})
	}
}

func BenchmarkRenderCanvas(b *testing.B) {
	rig := figures.NewRig("bench", 600, 200)
	var v core.IntVar
	sig, err := rig.Scope.AddSignal(core.Sig{Name: "s", Source: &v})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		sig.Trace().Push(float64(i % 100))
	}
	s := draw.NewSurface(600, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.Scope.Render(s, s.Bounds())
	}
}

func BenchmarkFreqDomainRender(b *testing.B) {
	rig := figures.NewRig("bench", 600, 200)
	var v core.IntVar
	sig, err := rig.Scope.AddSignal(core.Sig{Name: "s", Source: &v})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		sig.Trace().Push(float64(i % 100))
	}
	rig.Scope.SetDomain(core.FreqDomain)
	s := draw.NewSurface(600, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.Scope.Render(s, s.Bounds())
	}
}

func BenchmarkTupleParse(b *testing.B) {
	line := "123456 42.125 CWND"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tuple.Parse(line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeedPushTake(b *testing.B) {
	f := core.NewFeed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := time.Duration(i) * time.Millisecond
		f.Push(at, "x", 1)
		if i%64 == 63 {
			f.Take(at)
		}
	}
}

// benchFeedIngest measures the feed's pure ingest throughput: 8
// concurrent publishers, each owning one signal, push b.N tuples in total
// — per sample or in batches. Work proceeds in bounded rounds; between
// rounds the timer stops while the feed is drained (the consumer side has
// its own benchmarks), so ns/op is the per-tuple cost of the push path
// alone and the backlog never outgrows one round. Timestamps rise
// monotonically across rounds and the drain cursor trails them, so no
// tuple is ever dropped and both variants do identical per-tuple work.
func benchFeedIngest(b *testing.B, batchSize int) {
	const publishers = 8
	const roundPer = 1 << 11 // tuples per publisher per round (cache-resident backlog)
	f := core.NewFeed()
	var drainBuf []tuple.Tuple
	names := make([]string, publishers)
	templates := make([][]tuple.Tuple, publishers)
	for g := range names {
		names[g] = fmt.Sprintf("sig%d", g)
		if batchSize > 1 {
			// The batch is a reusable template — name and value slots
			// are laid down once, each round restamps only the times.
			// That is the shape of a real batching publisher (and of the
			// network server's decode scratch): batching amortizes
			// construction, not just locking.
			templates[g] = make([]tuple.Tuple, batchSize)
			for j := range templates[g] {
				templates[g][j] = tuple.Tuple{Value: float64(j), Name: names[g]}
			}
		}
	}
	base := 0 // starting timestamp of the current round, ms
	b.ResetTimer()
	for pushed := 0; pushed < b.N; {
		per := roundPer
		if rem := (b.N - pushed + publishers - 1) / publishers; rem < per {
			per = rem
		}
		var wg sync.WaitGroup
		for g := 0; g < publishers; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				if batchSize <= 1 {
					name := names[g]
					for i := 0; i < per; i++ {
						f.Push(time.Duration(base+i)*time.Millisecond, name, float64(i))
					}
					return
				}
				batch := templates[g]
				for i := 0; i < per; i += batchSize {
					n := batchSize
					if per-i < n {
						n = per - i
					}
					for j := 0; j < n; j++ {
						batch[j].Time = int64(base + i + j)
					}
					f.PushBatch(batch[:n])
				}
			}()
		}
		wg.Wait()
		pushed += per * publishers
		b.StopTimer()
		drainBuf = f.DrainInto(time.Duration(base+per-1)*time.Millisecond, drainBuf[:0])
		base += per
		b.StartTimer()
	}
	b.StopTimer()
	if _, dropped := f.Stats(); dropped != 0 {
		b.Fatalf("benchmark dropped %d tuples; timestamp discipline broken", dropped)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkFeedPushPerSample is the pre-shard ingest shape: 8 publishers
// contending one tuple at a time.
func BenchmarkFeedPushPerSample(b *testing.B) { benchFeedIngest(b, 1) }

// BenchmarkFeedPushBatch is the batch ingest path the network server
// uses; the acceptance bar is ≥4x the per-sample throughput above.
func BenchmarkFeedPushBatch(b *testing.B) { benchFeedIngest(b, 256) }

// BenchmarkProbeRecord measures the redesigned instrumentation hot path:
// one probe handle recording from one goroutine — the paper's "a few lines
// in the hot loop of a time-sensitive program" shape. Registration interned
// the name and pinned the shard up front, so each record is a lock-free
// late check plus plain stores into the probe's staging ring, with the
// cross-goroutine publication and the ring→shard flush amortized over
// batches. The benchmark measures an identical hot loop through the
// string-keyed Feed.Push for reference and asserts the acceptance bar
// inline: ≥2x over the string path and an allocation-free steady state
// (ReportAllocs must show 0 allocs/op; benchdiff gates both).
func BenchmarkProbeRecord(b *testing.B) {
	const signal = "net.flow0.cwnd"
	const drainMask = 1<<12 - 1 // drain cadence: keep the backlog cache-resident

	// Reference: the same loop, same drain cadence, through Feed.Push.
	const refN = 1 << 19
	ref := core.NewFeed()
	var refBuf []tuple.Tuple
	refStart := time.Now()
	for i := 0; i < refN; i++ {
		ref.Push(time.Duration(i)*time.Microsecond, signal, float64(i))
		if i&drainMask == drainMask {
			refBuf = ref.DrainInto(time.Duration(i)*time.Microsecond, refBuf[:0])
		}
	}
	nsPush := float64(time.Since(refStart)) / refN

	f := core.NewFeed()
	p, err := f.Probe(signal)
	if err != nil {
		b.Fatal(err)
	}
	// Warm up past the first-fill allocations (ring flush growing the
	// shard backlog, the drain buffer) so the timed region is steady
	// state.
	var drainBuf []tuple.Tuple
	base := 0
	for i := 0; i < 1<<13; i++ {
		p.RecordAt(time.Duration(base+i)*time.Microsecond, float64(i))
	}
	base += 1 << 13
	p.Flush()
	drainBuf = f.DrainInto(time.Duration(base-1)*time.Microsecond, drainBuf[:0])

	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RecordAt(time.Duration(base+i)*time.Microsecond, float64(i))
		if i&drainMask == drainMask {
			b.StopTimer()
			drainBuf = f.DrainInto(time.Duration(base+i)*time.Microsecond, drainBuf[:0])
			b.StartTimer()
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)

	nsProbe := float64(b.Elapsed()) / float64(b.N)
	if nsProbe > 0 {
		b.ReportMetric(nsPush/nsProbe, "speedup-vs-push")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/s")
	if _, dropped := f.Stats(); dropped != 0 {
		b.Fatalf("benchmark dropped %d samples; timestamp discipline broken", dropped)
	}
	// The acceptance bar, asserted only on runs long enough to be
	// meaningful.
	if b.N >= 1<<16 {
		if allocs := m1.Mallocs - m0.Mallocs; allocs > uint64(b.N/1000) {
			b.Fatalf("record path allocated: %d mallocs over %d records", allocs, b.N)
		}
		if nsProbe*2 > nsPush {
			b.Fatalf("Probe.RecordAt %.1f ns/op is not ≥2x Feed.Push %.1f ns/op", nsProbe, nsPush)
		}
	}
}

// BenchmarkClientSendProbeBatch measures the remote publish hot path: a
// probe-keyed batch enqueue through the client's reusable queue and encode
// buffers onto a loopback socket. ns/op is per sample. The steady state
// must be allocation-free (ReportAllocs 0 allocs/op, gated by benchdiff):
// the queue ping-pongs between two retained slices, the writer reuses one
// wire buffer, and the probe's canonical name means no per-sample string
// work anywhere.
func BenchmarkClientSendProbeBatch(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				io.Copy(io.Discard, conn) //nolint:errcheck
				conn.Close()
			}()
		}
	}()

	c, err := netscope.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	p, err := c.Probe("cps")
	if err != nil {
		b.Fatal(err)
	}
	const batchLen = 256
	samples := make([]tuple.Sample, batchLen)
	stamp := 0
	fill := func(n int) {
		for j := 0; j < n; j++ {
			samples[j] = tuple.Sample{At: time.Duration(stamp) * time.Millisecond, Value: float64(j & 0xff)}
			stamp++
		}
	}
	// Warm up the queue/encode buffers to their steady-state capacity.
	for r := 0; r < 8; r++ {
		fill(batchLen)
		if err := c.SendProbeBatch(p, samples); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	batches := 0
	for i := 0; i < b.N; i += batchLen {
		n := batchLen
		if b.N-i < n {
			n = b.N - i
		}
		fill(n)
		if err := c.SendProbeBatch(p, samples[:n]); err != nil {
			b.Fatal(err)
		}
		// Bound the queue by letting the writer catch up periodically
		// (untimed), so growth never masquerades as steady state.
		if batches++; batches&63 == 0 {
			b.StopTimer()
			if err := c.Flush(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/s")
	if err := c.Close(); err != nil {
		b.Fatal(err)
	}
	ln.Close()
	wg.Wait()
}

// BenchmarkTraceView measures the tiered-history render query: a window
// of W samples decimated into 512 columns. Doubling the window eight-fold
// should leave ns/op roughly flat — the query is O(columns), not
// O(samples).
func BenchmarkTraceView(b *testing.B) {
	tr := core.NewTrace(4096)
	tr.EnableHistory(1 << 21)
	for i := 0; i < 1<<20; i++ {
		tr.Push(float64(i & 0x3ff))
	}
	for _, window := range []int{1 << 17, 1 << 20} {
		window := window
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			var cols []core.Bucket
			for i := 0; i < b.N; i++ {
				cols = tr.View(window, 512)
			}
			if len(cols) != 512 {
				b.Fatalf("View returned %d cols", len(cols))
			}
			b.ReportMetric(float64(window)/512, "samples/col")
		})
	}
}

// BenchmarkRenderCanvasZoomedOut draws a million-sample sweep through the
// decimated render path (history-backed, ~1750 samples per pixel column),
// the O(columns) counterpart of BenchmarkRenderCanvas.
func BenchmarkRenderCanvasZoomedOut(b *testing.B) {
	rig := figures.NewRig("bench", 600, 200)
	var v core.IntVar
	sig, err := rig.Scope.AddSignal(core.Sig{Name: "s", Source: &v})
	if err != nil {
		b.Fatal(err)
	}
	sig.Trace().EnableHistory(1 << 21)
	for i := 0; i < 1<<20; i++ {
		sig.Trace().Push(float64(i % 100))
	}
	rig.Scope.SetZoom(600.0 / (1 << 20)) // the whole canvas spans 2^20 samples
	s := draw.NewSurface(600, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.Scope.Render(s, s.Bounds())
	}
}

func BenchmarkTupleAppendWire(b *testing.B) {
	t := tuple.Tuple{Time: 123456, Value: 42.125, Name: "CWND"}
	buf := make([]byte, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tuple.AppendWire(buf[:0], t)
	}
	if len(buf) == 0 {
		b.Fatal("no output")
	}
}

// --- wire protocol v3 (docs/WIRE.md) ----------------------------------------

// benchTelemetryBatch builds the runs-shaped counter-telemetry batch the
// binary codec is designed for: one signal per run, steady timestamps,
// counter-like values — the shape probe batches and the soak workload
// actually have on the wire.
func benchTelemetryBatch(n int) []tuple.Tuple {
	batch := make([]tuple.Tuple, n)
	for j := range batch {
		// A minute into a run, 2ms sample spacing, a monotone counter —
		// the magnitudes a real session's text lines actually carry.
		batch[j] = tuple.Tuple{Time: 60_000 + int64(j)*2, Value: float64(1_000_000 + j), Name: "net.flow0.cwnd"}
	}
	return batch
}

// BenchmarkTupleAppendBinary measures the v3 binary encode hot path: one
// warmed encoder appending runs-shaped batches into a reused buffer. ns/op
// is per tuple. The acceptance bar is asserted inline on runs long enough
// to be meaningful: sub-10 ns/tuple and an allocation-free steady state.
func BenchmarkTupleAppendBinary(b *testing.B) {
	const batchLen = 256
	batch := benchTelemetryBatch(batchLen)
	enc := tuple.NewBinaryEncoder()
	buf := enc.AppendBatch(make([]byte, 0, 4096), batch) // warm dictionary and buffer
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batchLen {
		buf = enc.AppendBatch(buf[:0], batch)
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	if len(buf) == 0 {
		b.Fatal("no output")
	}
	ns := float64(b.Elapsed()) / float64(b.N)
	b.ReportMetric(float64(len(buf))/batchLen, "bytes/tuple")
	// Assert only on full-length runs: the short calibration rounds the
	// harness uses to find b.N carry timer noise worth a few ns/tuple.
	if b.N >= 1<<22 {
		if allocs := m1.Mallocs - m0.Mallocs; allocs > uint64(b.N/10000) {
			b.Fatalf("binary encode allocated: %d mallocs over %d tuples", allocs, b.N)
		}
		if ns >= 10 {
			b.Fatalf("binary encode %.2f ns/tuple, want <10", ns)
		}
	}
}

// BenchmarkTupleParseBinary measures the v3 decode hot path: a
// StreamDecoder fed one pre-encoded runs-shaped chunk per iteration. ns/op
// is per tuple, directly comparable to BenchmarkTupleParse for the text
// grammar.
func BenchmarkTupleParseBinary(b *testing.B) {
	const batchLen = 256
	enc := tuple.NewBinaryEncoder()
	chunk := enc.AppendBatch(nil, benchTelemetryBatch(batchLen))
	dec := tuple.NewStreamDecoder()
	line := func(string) { b.Fatal("text line in a binary chunk") }
	sink := 0
	batch := func(ts []tuple.Tuple) { sink += len(ts) }
	if err := dec.Feed(chunk, line, batch); err != nil { // warm the dictionary
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batchLen {
		if err := dec.Feed(chunk, line, batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if sink == 0 {
		b.Fatal("no tuples decoded")
	}
}

// BenchmarkWireBytesPerTuple measures what v3 exists for: wire bandwidth.
// The same counter-telemetry stream is encoded as text lines and as binary
// frames (dictionary included); the metrics report bytes/tuple for both
// and the reduction ratio, and the run fails if binary does not beat text
// by the claimed ≥5x.
func BenchmarkWireBytesPerTuple(b *testing.B) {
	const batchLen = 256
	batch := benchTelemetryBatch(batchLen)
	enc := tuple.NewBinaryEncoder()
	var txt, bin []byte
	b.ResetTimer()
	for i := 0; i < b.N; i += batchLen {
		enc.Reset()
		txt = tuple.AppendWireBatch(txt[:0], batch)
		bin = enc.AppendBatch(bin[:0], batch)
	}
	b.StopTimer()
	txtPer := float64(len(txt)) / batchLen
	binPer := float64(len(bin)) / batchLen
	b.ReportMetric(txtPer, "text-bytes/tuple")
	b.ReportMetric(binPer, "binary-bytes/tuple")
	if binPer > 0 {
		ratio := txtPer / binPer
		b.ReportMetric(ratio, "reduction-x")
		if ratio < 5 {
			b.Fatalf("binary wire carries %.2f bytes/tuple vs text %.2f: %.1fx reduction, want ≥5x",
				binPer, txtPer, ratio)
		}
	}
}

func BenchmarkEventAggregation(b *testing.B) {
	rig := figures.NewRig("bench", 600, 200)
	if _, err := rig.Scope.AddSignal(core.Sig{Name: "lat", Agg: core.AggMax}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.Scope.Event("lat", float64(i&0xff))
		if i%100 == 99 {
			rig.Scope.Step(0)
		}
	}
}

// BenchmarkHubFanOut measures the netscope hub's fan-out path: one merged
// tuple stream broadcast to M loopback-TCP subscribers, each drained by its
// own reader. The timed section covers Inject through every subscriber's
// queue fully flushing, so ns/op is the true per-tuple fan-out cost.
func BenchmarkHubFanOut(b *testing.B) {
	for _, subs := range []int{1, 4, 16} {
		subs := subs
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			vc := glib.NewVirtualClock(time.Unix(0, 0))
			loop := glib.NewLoop(vc, glib.WithGranularity(0))
			srv := netscope.NewServer(loop)
			srv.SetSnapshotWindow(0)             // measure deltas, not history replay
			srv.SetSubscriberQueueLimit(1 << 20) // count drops, don't hide them
			subAddr, err := srv.ListenSubscribers("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			conns := make([]net.Conn, subs)
			for i := range conns {
				conn, err := net.Dial("tcp", subAddr.String())
				if err != nil {
					b.Fatal(err)
				}
				conns[i] = conn
				wg.Add(1)
				go func() {
					defer wg.Done()
					io.Copy(io.Discard, conn) //nolint:errcheck
				}()
			}
			for srv.Subscribers() < subs {
				loop.Iterate()
				time.Sleep(time.Millisecond)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srv.Inject(tuple.Tuple{Time: int64(i), Value: float64(i & 0xff), Name: "s"})
			}
			// Wait until every accepted byte is on the wire (or counted
			// dropped); the queue alone reads empty while a taken batch
			// is still going out on the socket.
			for !srv.SubscribersFlushed() {
				time.Sleep(50 * time.Microsecond)
			}
			b.StopTimer()
			_, _, published, dropped := srv.SubscriberStats()
			b.ReportMetric(float64(subs), "fanout")
			b.ReportMetric(float64(published*int64(subs))/b.Elapsed().Seconds(), "deliveries/s")
			b.ReportMetric(float64(dropped), "dropped")
			srv.Close()
			for _, c := range conns {
				c.Close()
			}
			wg.Wait()
		})
	}
}

// BenchmarkHubFanOutBatch is BenchmarkHubFanOut through the batch
// pipeline: tuples are injected in read-chunk-sized batches, so each
// subscriber queue takes one shared chunk per batch instead of one per
// tuple. ns/op stays per tuple for direct comparison.
func BenchmarkHubFanOutBatch(b *testing.B) {
	const batchLen = 64
	for _, subs := range []int{4, 16} {
		subs := subs
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			vc := glib.NewVirtualClock(time.Unix(0, 0))
			loop := glib.NewLoop(vc, glib.WithGranularity(0))
			srv := netscope.NewServer(loop)
			srv.SetSnapshotWindow(0)
			srv.SetSubscriberQueueLimit(1 << 20)
			subAddr, err := srv.ListenSubscribers("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			conns := make([]net.Conn, subs)
			for i := range conns {
				conn, err := net.Dial("tcp", subAddr.String())
				if err != nil {
					b.Fatal(err)
				}
				conns[i] = conn
				wg.Add(1)
				go func() {
					defer wg.Done()
					io.Copy(io.Discard, conn) //nolint:errcheck
				}()
			}
			for srv.Subscribers() < subs {
				loop.Iterate()
				time.Sleep(time.Millisecond)
			}
			batch := make([]tuple.Tuple, batchLen)
			for j := range batch {
				batch[j] = tuple.Tuple{Value: float64(j & 0xff), Name: "s"}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i += batchLen {
				n := batchLen
				if b.N-i < n {
					n = b.N - i
				}
				for j := 0; j < n; j++ {
					batch[j].Time = int64(i + j)
				}
				srv.InjectBatch(batch[:n])
			}
			for !srv.SubscribersFlushed() {
				time.Sleep(50 * time.Microsecond)
			}
			b.StopTimer()
			_, _, published, dropped := srv.SubscriberStats()
			b.ReportMetric(float64(published*int64(subs))/b.Elapsed().Seconds(), "deliveries/s")
			b.ReportMetric(float64(dropped), "dropped")
			srv.Close()
			for _, c := range conns {
				c.Close()
			}
			wg.Wait()
		})
	}
}

// BenchmarkHubFanOutFiltered measures the v2 per-signal subscription path
// at hub scale: 64 signals, 100 subscribers all filtered to one hot
// signal, plus one unfiltered reference viewer. The filtered subscribers
// share a single narrowed encoding per batch (the memo path), so the
// per-tuple cost stays near the unfiltered broadcast while each filtered
// wire carries ~1/64 of the bytes. The bench asserts the headline claim:
// a filtered subscriber receives <5% of the unfiltered byte volume.
func BenchmarkHubFanOutFiltered(b *testing.B) {
	const (
		signals  = 64
		filtered = 100
		batchLen = 64
	)
	vc := glib.NewVirtualClock(time.Unix(0, 0))
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	srv := netscope.NewServer(loop)
	srv.SetSnapshotWindow(0)
	srv.SetSubscriberQueueLimit(1 << 20)
	subAddr, err := srv.ListenSubscribers("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	var conns []net.Conn
	var counters []*int64
	dial := func(request string) *int64 {
		conn, err := net.Dial("tcp", subAddr.String())
		if err != nil {
			b.Fatal(err)
		}
		if request != "" {
			if _, err := conn.Write([]byte(request)); err != nil {
				b.Fatal(err)
			}
		}
		conns = append(conns, conn)
		n := new(int64)
		counters = append(counters, n)
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 64<<10)
			for {
				k, err := conn.Read(buf)
				atomic.AddInt64(n, int64(k))
				if err != nil {
					return
				}
			}
		}()
		return n
	}
	unfiltered := dial("") // silent v1 reference viewer
	var filteredBytes []*int64
	for i := 0; i < filtered; i++ {
		filteredBytes = append(filteredBytes, dial("gscope-sub 2 signals=sig0\n"))
	}
	for srv.Subscribers() < filtered+1 {
		loop.Iterate()
		time.Sleep(time.Millisecond)
	}
	batch := make([]tuple.Tuple, batchLen)
	for j := range batch {
		batch[j] = tuple.Tuple{Value: float64(j & 0xff), Name: fmt.Sprintf("sig%d", j%signals)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += batchLen {
		n := batchLen
		if b.N-i < n {
			n = b.N - i
		}
		for j := 0; j < n; j++ {
			batch[j].Time = int64(i + j)
		}
		srv.InjectBatch(batch[:n])
	}
	for !srv.SubscribersFlushed() {
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
	st := srv.FanoutStats()
	b.ReportMetric(float64(st.Published*int64(filtered+1))/b.Elapsed().Seconds(), "deliveries/s")
	b.ReportMetric(float64(st.Dropped), "dropped")
	srv.Close()
	for _, c := range conns {
		c.Close()
	}
	wg.Wait()
	ref := atomic.LoadInt64(unfiltered)
	var filtTotal int64
	for _, n := range filteredBytes {
		filtTotal += atomic.LoadInt64(n)
	}
	filtAvg := filtTotal / int64(len(filteredBytes))
	if ref > 0 {
		ratio := float64(filtAvg) / float64(ref)
		b.ReportMetric(100*ratio, "filtered-bytes-%")
		// The acceptance bar: 1 hot signal of 64 must cost <5% of the
		// full stream. Only meaningful once enough batches flowed to
		// amortize the handshake frames.
		if b.N >= 64*100 && ratio >= 0.05 {
			b.Fatalf("filtered subscriber received %.1f%% of the unfiltered bytes, want <5%%", 100*ratio)
		}
	}
}

// BenchmarkParamSetNetwork measures one remote-parameter round trip: a
// control-plane client sends "param set" on the subscriber socket and
// waits for the hub's param-ok ack. ns/op is the full wire round trip
// through the loop's command handling and bounds clamping.
func BenchmarkParamSetNetwork(b *testing.B) {
	loop := glib.NewLoop(glib.RealClock{})
	srv := netscope.NewServer(loop)
	ps := core.NewParamSet()
	var knob core.FloatVar
	if err := ps.Add(core.FloatParam("knob", &knob, 0, 1e9)); err != nil {
		b.Fatal(err)
	}
	srv.SetParams(ps)
	subAddr, err := srv.ListenSubscribers("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		loop.Run() //nolint:errcheck
		close(done)
	}()
	defer func() {
		srv.Close()
		loop.Quit()
		<-done
	}()
	conn, err := net.Dial("tcp", subAddr.String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("gscope-sub 2 stream=0\n")); err != nil {
		b.Fatal(err)
	}
	r := bufio.NewReader(conn)
	readFrame := func(verb string) {
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				b.Fatal(err)
			}
			f, ok := tuple.ParseControl(line)
			if !ok {
				continue
			}
			if f.Verb == "error" {
				b.Fatalf("hub error: %v", f.Fields)
			}
			if f.Verb == verb {
				return
			}
		}
	}
	readFrame("gscope-hub") // the v2 ack
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fmt.Fprintf(conn, "param set knob %d\n", i); err != nil {
			b.Fatal(err)
		}
		readFrame("param-ok")
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sets/s")
	if knob.Load() != float64(b.N-1) {
		b.Fatalf("knob = %v after %d sets", knob.Load(), b.N)
	}
}

// BenchmarkNetsimThroughput reports how many simulated seconds of the
// 16-elephant dumbbell fit in one wall-clock second.
func BenchmarkNetsimThroughput(b *testing.B) {
	cfg := netsim.DefaultDumbbell()
	d := netsim.NewDumbbell(cfg)
	for f := 0; f < 16; f++ {
		d.AddElephant()
	}
	horizon := time.Duration(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		horizon += 100 * time.Millisecond
		d.Sim.RunUntil(horizon)
	}
	b.ReportMetric(float64(d.Sim.Processed())/float64(b.N), "events/op")
}

// BenchmarkMxtrafSnapshot measures the metrics path mxtraf exports to the
// scope each poll.
func BenchmarkMxtrafSnapshot(b *testing.B) {
	g := mxtraf.New(mxtraf.DefaultConfig())
	g.SetElephants(8)
	g.Sim().RunUntil(2 * time.Second)
	at := g.Sim().Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += time.Millisecond
		g.Sim().RunUntil(at)
		g.Snapshot()
	}
}

// --- flight recorder (internal/reclog) -------------------------------------

// BenchmarkRecordAppend measures the loop-side cost of flight recording:
// one bounded-queue append per delivered batch. ns/op is per tuple; the
// allocation report must show amortized sub-1 allocs/op (one batch copy
// per 256 tuples — never a per-tuple allocation), which is the acceptance
// bar for "recording costs one extra queue append per batch".
func BenchmarkRecordAppend(b *testing.B) {
	lg, err := reclog.Open(b.TempDir(), reclog.Options{
		SegmentBytes: 64 << 20,
		QueueLimit:   1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	const batchSize = 256
	batch := make([]tuple.Tuple, batchSize)
	for j := range batch {
		batch[j] = tuple.Tuple{Value: float64(j % 50), Name: "cps"}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		for j := range batch {
			batch[j].Time = int64(i + j)
		}
		lg.Append(batch)
	}
	b.StopTimer()
	if err := lg.Close(); err != nil {
		b.Fatal(err)
	}
	appended, _, _ := lg.Stats()
	b.ReportMetric(float64(appended)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkReplayDrain measures as-fast-as-possible replay throughput:
// sealed segments read back, decoded and delivered in batches. ns/op is
// per tuple.
func BenchmarkReplayDrain(b *testing.B) {
	dir := b.TempDir()
	lg, err := reclog.Open(dir, reclog.Options{SegmentBytes: 4 << 20, QueueLimit: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	const n = 1 << 17
	batch := make([]tuple.Tuple, 256)
	for i := 0; i < n; i += len(batch) {
		for j := range batch {
			batch[j] = tuple.Tuple{Time: int64(i + j), Value: float64(j % 50), Name: "cps"}
		}
		lg.Append(batch)
	}
	if err := lg.Close(); err != nil {
		b.Fatal(err)
	}
	sess, err := reclog.OpenSession(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for drained := 0; drained < b.N; {
		rep := reclog.NewReplayer(sess)
		rep.SetSpeed(0)
		if err := rep.Run(func(batch []tuple.Tuple) error {
			drained += len(batch)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// --- Web gateway fan-out ----------------------------------------------------

// BenchmarkWebFanout measures the web gateway's per-tuple fan-out cost on
// both live lanes: sse-json (the JSON pump behind GET /v1/stream) and
// ws-binary (raw v3 passthrough in WebSocket binary messages behind GET
// /v1/ws?format=binary). Tuples are injected in read-chunk-sized batches
// on the loop goroutine — the realistic ingest shape — and browser
// stand-ins drain real TCP sockets. ns/op is per injected tuple.
func BenchmarkWebFanout(b *testing.B) {
	const wsBinaryReq = "GET /v1/ws?format=binary HTTP/1.1\r\nHost: bench\r\n" +
		"Upgrade: websocket\r\nConnection: Upgrade\r\n" +
		"Sec-WebSocket-Key: AAAAAAAAAAAAAAAAAAAAAA==\r\nSec-WebSocket-Version: 13\r\n\r\n"
	for _, lane := range []struct{ name, request string }{
		{"sse-json", "GET /v1/stream HTTP/1.1\r\nHost: bench\r\n\r\n"},
		{"ws-binary", wsBinaryReq},
	} {
		lane := lane
		for _, clients := range []int{1, 4} {
			clients := clients
			b.Run(fmt.Sprintf("%s/clients=%d", lane.name, clients), func(b *testing.B) {
				benchWebFanout(b, lane.request, clients)
			})
		}
	}
}

func benchWebFanout(b *testing.B, request string, clients int) {
	loop := glib.NewLoop(glib.RealClock{})
	srv := netscope.NewServer(loop)
	srv.SetSnapshotWindow(0)             // measure deltas, not history replay
	srv.SetSubscriberQueueLimit(1 << 20) // count drops, don't hide them
	g := webscope.New(srv, webscope.Options{QueueLimit: 1 << 20, NoDashboard: true})
	addr, err := srv.ListenWeb("127.0.0.1:0", g)
	if err != nil {
		b.Fatal(err)
	}
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		loop.Run() //nolint:errcheck
	}()
	defer func() {
		loop.Quit()
		<-loopDone
		srv.Close()
	}()

	var drained atomic.Int64
	var wg sync.WaitGroup
	conns := make([]net.Conn, clients)
	for i := range conns {
		conn, err := net.Dial("tcp", addr.String())
		if err != nil {
			b.Fatal(err)
		}
		conns[i] = conn
		if _, err := conn.Write([]byte(request)); err != nil {
			b.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 32*1024)
			for {
				n, err := conn.Read(buf)
				drained.Add(int64(n))
				if err != nil {
					return
				}
			}
		}()
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
		wg.Wait()
	}()
	for srv.Web().Clients() < int64(clients) {
		time.Sleep(time.Millisecond)
	}

	const batchLen = 64
	batch := make([]tuple.Tuple, batchLen)
	for j := range batch {
		batch[j] = tuple.Tuple{Value: float64(j & 0xff), Name: "s"}
	}
	var n int
	injected := make(chan struct{})
	inject := func() { srv.InjectBatch(batch[:n]); injected <- struct{}{} }
	b.ResetTimer()
	for i := 0; i < b.N; i += batchLen {
		n = batchLen
		if b.N-i < n {
			n = b.N - i
		}
		for j := 0; j < n; j++ {
			batch[j].Time = int64(i + j)
		}
		loop.Invoke(inject)
		<-injected
	}
	// First the hub side: every injected tuple encoded and written into
	// the gateway pipes (the hub writer works in bursts, so byte-count
	// stability alone would false-trigger between bursts).
	for !srv.SubscribersFlushed() {
		time.Sleep(50 * time.Microsecond)
	}
	// Wait until the gateway has written everything it is going to write:
	// the drained byte count holding still across several polls after the
	// last injection means the queues and pipes are empty (the web lane
	// has no SubscribersFlushed analogue — the sockets are the truth).
	last := drained.Load()
	for quiet := 0; quiet < 5; {
		time.Sleep(2 * time.Millisecond)
		if cur := drained.Load(); cur == last {
			quiet++
		} else {
			last, quiet = cur, 0
		}
	}
	b.StopTimer()
	_, _, _, dropped := srv.SubscriberStats()
	b.ReportMetric(float64(last)/float64(b.N), "bytes/tuple")
	b.ReportMetric(float64(dropped), "hub-dropped")
}
