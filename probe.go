package gscope

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netscope"
	"repro/internal/tuple"
)

// SignalID is the dense handle an interner assigns to a signal name; the
// key of the Feed.PushID fast paths.
type SignalID = tuple.SignalID

// Sample is one timestamped value without a name — the payload of the
// probe batch paths.
type Sample = tuple.Sample

// Interner assigns dense SignalIDs to names and keeps their canonical
// strings and prebuilt wire bytes.
type Interner = tuple.Interner

// FeedProbe is the local single-producer publish handle (see core.Probe
// for the ring semantics and the single-producer contract).
type FeedProbe = core.Probe

// ClientProbe is the remote publish handle on a NetClient.
type ClientProbe = netscope.ClientProbe

// Probe is a pre-registered publish handle for one signal — the paper's
// "few lines in the hot loop" instrumentation point (§3–4), redesigned so
// the per-sample cost is a handful of stores: the signal name is
// validated, interned, and routed once at registration, and Record/
// RecordAt then publish with no hashing, no string copies, and no
// allocation. A Probe created through a Registry can publish locally (into
// a Scope's feed), remotely (through a NetClient), or both from the same
// call sites, so instrumentation does not change when a program grows from
// one process to a distributed deployment (§4.4).
//
// The local path inherits core.Probe's single-producer contract: call
// Record/RecordAt from one goroutine at a time, and Flush before the
// producer pauses or exits. Remote-only probes are free of that
// restriction.
type Probe struct {
	feed *core.Probe
	net  *netscope.ClientProbe
	now  func() time.Duration
}

// RecordAt publishes one sample stamped at the given offset on the shared
// timeline. The result reports the local feed's late-data verdict (always
// true for remote-only probes, whose verdict is rendered server-side).
func (p *Probe) RecordAt(at time.Duration, v float64) bool {
	ok := true
	if p.feed != nil {
		ok = p.feed.RecordAt(at, v)
	}
	if p.net != nil {
		p.net.Send(at, v) //nolint:errcheck // async path; surfaced by Client.Flush/Close
	}
	return ok
}

// Record publishes v stamped with the registry's clock: the owning
// scope's elapsed time when the registry has a scope, time since registry
// creation otherwise.
func (p *Probe) Record(v float64) bool { return p.RecordAt(p.now(), v) }

// RecordBatch publishes a run of samples: one feed lock and one client
// enqueue for the whole run.
func (p *Probe) RecordBatch(samples []Sample) {
	if p.feed != nil {
		for _, s := range samples {
			p.feed.RecordAt(s.At, s.Value)
		}
	}
	if p.net != nil {
		p.net.SendBatch(samples) //nolint:errcheck // async path
	}
}

// Flush publishes any locally staged samples (a no-op for remote-only
// probes). Like Record it must run on the producing goroutine.
func (p *Probe) Flush() {
	if p.feed != nil {
		p.feed.Flush()
	}
}

// Name returns the probe's canonical signal name.
func (p *Probe) Name() string {
	if p.feed != nil {
		return p.feed.Name()
	}
	if p.net != nil {
		return p.net.Name()
	}
	return ""
}

// Int returns integer-typed sugar over the probe.
func (p *Probe) Int() IntProbe { return IntProbe{p} }

// Bool returns boolean-typed sugar over the probe.
func (p *Probe) Bool() BoolProbe { return BoolProbe{p} }

// IntProbe records integer samples — the INTEGER signal kind's publish
// shape without a float conversion at every call site.
type IntProbe struct{ p *Probe }

// Record publishes v with the registry clock.
func (ip IntProbe) Record(v int64) bool { return ip.p.Record(float64(v)) }

// RecordAt publishes v at the given offset.
func (ip IntProbe) RecordAt(at time.Duration, v int64) bool {
	return ip.p.RecordAt(at, float64(v))
}

// BoolProbe records boolean samples as 0/1, the BOOLEAN signal encoding.
type BoolProbe struct{ p *Probe }

// Record publishes v with the registry clock.
func (bp BoolProbe) Record(v bool) bool { return bp.p.RecordAt(bp.p.now(), boolSample(v)) }

// RecordAt publishes v at the given offset.
func (bp BoolProbe) RecordAt(at time.Duration, v bool) bool {
	return bp.p.RecordAt(at, boolSample(v))
}

func boolSample(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// Registry hands out Probe handles bound to a local Scope, a NetClient, or
// both — one instrumentation surface for every deployment shape. Probes
// are idempotent per name. The zero option set is valid but useless;
// configure at least one sink.
type Registry struct {
	scope  *core.Scope
	client *netscope.Client
	origin time.Time

	mu     sync.Mutex
	probes map[string]*Probe
}

// RegistryOption configures a Registry.
type RegistryOption func(*Registry)

// WithScope routes probes into sc's buffered feed; Record stamps samples
// with sc's clock.
func WithScope(sc *Scope) RegistryOption { return func(r *Registry) { r.scope = sc } }

// WithNetClient additionally (or exclusively) streams every recorded
// sample through c to a netscope server.
func WithNetClient(c *NetClient) RegistryOption { return func(r *Registry) { r.client = c } }

// NewRegistry builds a probe registry over the configured sinks.
func NewRegistry(opts ...RegistryOption) *Registry {
	r := &Registry{origin: time.Now(), probes: make(map[string]*Probe)}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Probe validates and registers name once and returns its publish handle;
// repeated calls return the same handle. Registration is safe from any
// goroutine; the returned handle's local path is single-producer.
func (r *Registry) Probe(name string) (*Probe, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p := r.probes[name]; p != nil {
		return p, nil
	}
	if err := tuple.ValidateName(name); err != nil {
		return nil, err
	}
	p := &Probe{}
	if r.scope != nil {
		fp, err := r.scope.Probe(name)
		if err != nil {
			return nil, err
		}
		p.feed = fp
	}
	if r.client != nil {
		np, err := r.client.Probe(name)
		if err != nil {
			return nil, err
		}
		p.net = np
	}
	if r.scope != nil {
		p.now = r.scope.Elapsed
	} else {
		origin := r.origin
		p.now = func() time.Duration { return time.Since(origin) }
	}
	r.probes[name] = p
	return p, nil
}

// MustProbe is Probe for static signal names, panicking on the errors only
// an invalid literal can cause — the Figure-6 registration shape.
func (r *Registry) MustProbe(name string) *Probe {
	p, err := r.Probe(name)
	if err != nil {
		panic(fmt.Sprintf("gscope: %v", err))
	}
	return p
}

// Flush publishes the staged samples of every probe. It must run on the
// goroutine that records (or after all recording goroutines have
// stopped); use it before rendering or shutdown.
func (r *Registry) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range r.probes {
		p.Flush()
	}
}
