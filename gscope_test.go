package gscope

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/tuple"
)

// TestFigure6ProgramStructure exercises the paper's Figure 6 sample
// program through the public facade: create a scope, register the
// elephants signal, set 50 ms polling mode, start polling, drive signal
// changes from an event source on the same loop, run. (Experiment FIG6 in
// DESIGN.md; examples/quickstart is the runnable twin of this test.)
func TestFigure6ProgramStructure(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	loop := NewLoopGranularity(clock, 0)

	// scope = gtk_scope_new(name, width, height);
	scope := New(loop, "fig6", 600, 200)

	// GtkScopeSig elephants_sig = {...}; gtk_scope_signal_new(scope, sig);
	var elephants IntVar
	sig, err := scope.AddSignal(Sig{Name: "elephants", Source: &elephants, Min: 0, Max: 40})
	if err != nil {
		t.Fatal(err)
	}

	// gtk_scope_set_polling_mode(scope, 50);
	if err := scope.SetPollingMode(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// gtk_scope_start_polling(scope);
	if err := scope.StartPolling(); err != nil {
		t.Fatal(err)
	}

	// g_io_add_watch(..., read_program, fd); — modeled as a control
	// callback on the same loop mutating the signal variable, like
	// read_program reacting to control data.
	loop.TimeoutAdd(200*time.Millisecond, func(int) bool {
		if elephants.Load() == 8 {
			elephants.Store(16)
		} else {
			elephants.Store(8)
		}
		return true
	})
	elephants.Store(8)

	// gtk_main(); — three virtual seconds.
	loop.Advance(3 * time.Second)

	if got := scope.Stats().Polls; got != 60 {
		t.Fatalf("polls = %d, want 60", got)
	}
	lo, hi, ok := sig.Trace().MinMax()
	if !ok || lo != 8 || hi != 16 {
		t.Fatalf("elephants trace range %v..%v, want 8..16", lo, hi)
	}
}

// TestFacadeEndToEnd drives every facade surface an application touches:
// parameters, aggregation, buffered push, recording, snapshot.
func TestFacadeEndToEnd(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	loop := NewLoopGranularity(clock, 0)
	scope := New(loop, "e2e", 320, 120)

	var bw FloatVar
	if _, err := scope.AddSignal(Sig{Name: "float", Source: &bw}); err != nil {
		t.Fatal(err)
	}
	if _, err := scope.AddSignal(Sig{Name: "pkts", Agg: AggEvents}); err != nil {
		t.Fatal(err)
	}
	if _, err := scope.AddSignal(Sig{Name: "remote", Kind: KindBuffer}); err != nil {
		t.Fatal(err)
	}

	params := NewParams()
	var rate IntVar
	rate.Store(100)
	if err := params.Add(IntParam("rate", &rate, 0, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := params.Set("rate", 250); err != nil {
		t.Fatal(err)
	}
	if rate.Load() != 250 {
		t.Fatal("param write-through failed")
	}

	var rec bytes.Buffer
	scope.SetRecorder(&rec)
	if err := scope.SetPollingMode(DefaultPeriod); err != nil {
		t.Fatal(err)
	}
	if err := scope.StartPolling(); err != nil {
		t.Fatal(err)
	}

	bw.Store(12.5)
	scope.Event("pkts", 1)
	scope.Event("pkts", 1)
	scope.Push(10*time.Millisecond, "remote", 77)
	loop.Advance(500 * time.Millisecond)

	if v := scope.Signal("float").Value(); v != 12.5 {
		t.Fatalf("float value = %v", v)
	}
	if v, ok := scope.Signal("remote").Trace().Last(); !ok || v != 77 {
		t.Fatalf("remote = %v ok=%v", v, ok)
	}
	// Events were counted in the first interval.
	if lo, hi, ok := scope.Signal("pkts").Trace().MinMax(); !ok || lo != 0 || hi != 2 {
		t.Fatalf("pkts range %v..%v", lo, hi)
	}

	scope.FlushRecorder() //nolint:errcheck
	tuples, err := tuple.NewReader(&rec, true).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) == 0 {
		t.Fatal("nothing recorded")
	}

	frame := scope.Snapshot()
	if frame.W != 320 || frame.H != 120 {
		t.Fatalf("snapshot %dx%d", frame.W, frame.H)
	}
}

// TestThreadSafetyViaInvoke verifies the §4.3 discipline: application
// goroutines mutate scope state through Loop.Invoke (the "global GTK
// lock") while Event/Push stay directly thread-safe.
func TestThreadSafetyViaInvoke(t *testing.T) {
	loop := NewLoop(nil) // real clock
	scope := New(loop, "mt", 160, 80)
	if _, err := scope.AddSignal(Sig{Name: "e", Agg: AggSum}); err != nil {
		t.Fatal(err)
	}
	if err := scope.SetPollingMode(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			scope.Event("e", 1) // thread-safe directly
		}
		loop.Invoke(func() {
			scope.SetZoom(2) // GUI-thread-only state via Invoke
		})
	}()

	loop.Invoke(func() {
		if err := scope.StartPolling(); err != nil {
			t.Error(err)
		}
	})
	quitTimer := time.AfterFunc(2*time.Second, loop.Quit)
	defer quitTimer.Stop()
	go func() {
		<-done
		time.Sleep(50 * time.Millisecond)
		loop.Quit()
	}()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if scope.Zoom() != 2 {
		t.Fatal("Invoke mutation lost")
	}
	if lo, hi, ok := scope.Signal("e").Trace().MinMax(); ok && (lo < 0 || hi > 100) {
		t.Fatalf("aggregated range %v..%v", lo, hi)
	}
}

func TestConstantsReexported(t *testing.T) {
	if KindBuffer.String() != "BUFFER" {
		t.Fatal("kind constants not wired")
	}
	if AggRate.String() != "rate" {
		t.Fatal("agg constants not wired")
	}
	if DefaultPeriod != 50*time.Millisecond {
		t.Fatal("default period should match Figure 6")
	}
	if DefaultTickGranularity != 10*time.Millisecond {
		t.Fatal("tick granularity should match §4.5")
	}
	if FreqDomain.String() != "frequency" || TimeDomain.String() != "time" {
		t.Fatal("domain constants not wired")
	}
	if LinePoints.String() != "points" {
		t.Fatal("line constants not wired")
	}
	if ModeStopped.String() != "stopped" || ModePolling.String() != "polling" || ModePlayback.String() != "playback" {
		t.Fatal("mode constants not wired")
	}
}

func TestFuncWithArgsFacade(t *testing.T) {
	src := FuncWithArgs(func(a, b any) float64 { return float64(a.(int) * b.(int)) }, 6, 7)
	if v, ok := src.Sample(); !ok || v != 42 {
		t.Fatalf("sample = %v", v)
	}
}

func TestBoolParamFacade(t *testing.T) {
	params := NewParams()
	var b BoolVar
	var f FloatVar
	if err := params.Add(BoolParam("flag", &b)); err != nil {
		t.Fatal(err)
	}
	if err := params.Add(FloatParam("g", &f, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := params.Set("flag", 1); err != nil {
		t.Fatal(err)
	}
	if !b.Load() {
		t.Fatal("bool param")
	}
}

// TestSubscribeNetV2Facade drives the v2 query/control plane end to end
// through the public facade only: a filtered, backfilled subscription plus
// a remote parameter set, the shapes the README advertises.
func TestSubscribeNetV2Facade(t *testing.T) {
	loop := NewLoop(nil) // real clock
	srv := NewNetServer(loop)
	params := NewParams()
	var gain IntVar
	if err := params.Add(IntParam("gain", &gain, 0, 10)); err != nil {
		t.Fatal(err)
	}
	srv.SetParams(params)
	srv.SetSnapshotWindow(time.Hour)
	subAddr, err := srv.ListenSubscribers("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan struct{})
	go func() {
		loop.Run() //nolint:errcheck
		close(done)
	}()
	defer func() {
		loop.Quit()
		<-done
	}()

	inject := func(ts Tuple) { loop.Invoke(func() { srv.Inject(ts) }) }
	for i := int64(1); i <= 5; i++ {
		inject(Tuple{Time: i * 1000, Value: float64(i), Name: "cpu.user"})
		inject(Tuple{Time: i * 1000, Value: float64(-i), Name: "mem"})
	}

	var mu sync.Mutex
	var got []Tuple
	frames := make(chan ControlFrame, 16)
	sub, err := SubscribeNet(loop, subAddr.String(), func(tu Tuple) {
		mu.Lock()
		got = append(got, tu)
		mu.Unlock()
	}, WithSignals("cpu.*"), WithSince(-3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	sub.OnControl(func(f ControlFrame) {
		select {
		case frames <- f:
		default:
		}
	})

	wait := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatal("timed out: " + what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Backfill: cpu.* tuples stamped in [2000, 5000] — three of them.
	wait(func() bool { return sub.Backfilled() >= 3 }, "backfill")
	inject(Tuple{Time: 6000, Value: 6, Name: "cpu.user"})
	inject(Tuple{Time: 6000, Value: -6, Name: "mem"})
	wait(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 4
	}, "live delta")
	mu.Lock()
	for _, tu := range got {
		if tu.Name != "cpu.user" {
			t.Fatalf("filter leaked %+v", tu)
		}
	}
	if got[0].Time != 2000 {
		t.Fatalf("backfill starts at %d, want 2000", got[0].Time)
	}
	mu.Unlock()

	// Remote parameter: set over the wire, clamped, observed in-process.
	if err := sub.Command("param set gain 99"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var f ControlFrame
		select {
		case f = <-frames:
		case <-time.After(50 * time.Millisecond):
		}
		if f.Verb == "param-ok" {
			if f.Arg(0) != "gain" || f.Arg(1) != "10" {
				t.Fatalf("param-ok = %+v", f)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no param-ok frame")
		}
	}
	if gain.Load() != 10 {
		t.Fatalf("gain = %d, want 10 (clamped)", gain.Load())
	}
	if st := srv.FanoutStats(); st.Filtered == 0 {
		t.Fatal("fan-out stats show no filtering")
	}
}
