// Webdash serves a live software oscilloscope to any browser: a hub
// ingests a synthetic publisher over the §4.4 TCP lane and exposes the
// merged stream through the web gateway — the embedded canvas dashboard
// at /, Server-Sent Events and WebSocket live streams, min/max envelope
// history at /v1/view (JSON or PNG), and the control-parameter registry
// over REST. It is the library form of `gscoped -http :8080`:
//
//	publisher ──TCP──→ hub ──ListenWeb──→ http://localhost:8080/
//	                    │                   ├ /            dashboard
//	                    │                   ├ /v1/stream   SSE + WebSocket
//	                    └ backfill store ←──┤ /v1/view     history (JSON/PNG)
//	                                        └ /v1/params   REST control plane
//
// Run it, open the printed URL, and drag the "amplitude" parameter on
// the dashboard (or `curl -X PUT localhost:8080/v1/params/amplitude?value=10`)
// to watch the waves flatten live in every connected tab. Endpoint
// reference: docs/HTTP.md.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"time"

	gscope "repro"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "web gateway listen address")
	duration := flag.Duration("duration", 0, "exit after this long (0 = run until interrupted)")
	flag.Parse()

	loop := gscope.NewLoop(nil) // real clock

	// The hub: ingests publishers, keeps history for browser viewers.
	srv := gscope.NewNetServer(loop)
	// Browser viewers want history — trailing-window stream backfill and
	// /v1/view envelopes both read the tiered backfill store.
	srv.SetBackfillRetention(0) // 0 selects the default retention
	pubAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}

	// A remote-settable control parameter: the publisher's amplitude,
	// adjustable from the dashboard or PUT /v1/params/amplitude.
	var amplitude gscope.FloatVar
	amplitude.Store(25)
	params := gscope.NewParams()
	if err := params.Add(gscope.FloatParam("amplitude", &amplitude, 0, 40)); err != nil {
		fatal(err)
	}
	srv.SetParams(params)

	// The web gateway: dashboard at /, /v1 API, SSE/WS streams.
	webAddr, err := srv.ListenWeb(*addr, gscope.NewWebGateway(srv, gscope.WebOptions{}))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("webdash: open http://%s/ in a browser (publisher lane on %s)\n", webAddr, pubAddr)

	// The synthetic publisher: a separate party that only shares the
	// socket, exactly as a remote machine would. Two waves and a counter.
	pub, err := gscope.DialNet(pubAddr.String())
	if err != nil {
		fatal(err)
	}
	defer pub.Close()
	start := time.Now()
	stopPub := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		n := 0
		for {
			select {
			case <-stopPub:
				pub.Flush()
				return
			case <-tick.C:
				n++
				d := time.Since(start)
				t := d.Seconds()
				a := amplitude.Load()
				pub.Send(d, "wave.sin", a*math.Sin(2*math.Pi*t/3))
				pub.Send(d, "wave.saw", a*(math.Mod(t, 2)-1))
				pub.Send(d, "ticks", float64(n%100))
			}
		}
	}()

	// Run until interrupted (or -duration elapses).
	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	go func() {
		if *duration > 0 {
			select {
			case <-interrupt:
			case <-time.After(*duration):
			}
		} else {
			<-interrupt
		}
		loop.Invoke(loop.Quit)
	}()

	if err := loop.Run(); err != nil {
		fatal(err)
	}
	close(stopPub)
	<-pubDone
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("webdash: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "webdash:", err)
	os.Exit(1)
}
