// Scheduler visualizes the real-rate proportion-period CPU scheduler
// (reference [19] of the paper) the way the authors did: "we use gscope to
// view dynamically changing process proportions as assigned by a CPU
// proportion-period scheduler... These proportions are assigned at the
// granularity of the process period and we set the scope polling period to
// be the same as the process period" (§4.2, Periodic Signals).
//
// Two media pipelines run under the scheduler: frames arrive from I/O at a
// fixed real rate and CPU-bound decoders must keep up, so each decoder's
// proportion is pinned by its stream's real-rate requirement. Mid-run the
// video decoder's work doubles (a complex scene) and its proportion
// visibly doubles while audio is undisturbed. The scope polls at the
// process period; the final frame is written to scheduler.png.
package main

import (
	"fmt"
	"os"
	"time"

	gscope "repro"
	"repro/internal/gtk"
	"repro/internal/sched"
)

func main() {
	const period = 10 * time.Millisecond // process period == polling period

	s := sched.NewScheduler()
	videoQ := s.AddQueue(sched.NewQueue("video.q", 120))
	audioQ := s.AddQueue(sched.NewQueue("audio.q", 120))
	s.AddProcess(&sched.Process{Name: "video.src", Role: sched.Arrival, Rate: 30, Out: videoQ})
	s.AddProcess(&sched.Process{Name: "audio.src", Role: sched.Arrival, Rate: 50, Out: audioQ})
	video := s.AddProcess(&sched.Process{
		Name: "video.dec", Role: sched.Consumer, Rate: 100, Period: period, In: videoQ,
	})
	audio := s.AddProcess(&sched.Process{
		Name: "audio.dec", Role: sched.Consumer, Rate: 400, Period: period, In: audioQ,
	})

	// Deterministic scope on a virtual clock, stepped in lockstep with
	// the scheduler.
	clock := gscope.NewVirtualClock(time.Unix(0, 0))
	loop := gscope.NewLoopGranularity(clock, 0)
	scope := gscope.New(loop, "proportion-period scheduler", 600, 200)

	add := func(name string, fn func() float64) {
		if _, err := scope.AddSignal(gscope.Sig{
			Name:   name,
			Source: gscope.FuncSource(fn),
			Min:    0, Max: 100,
		}); err != nil {
			fatal(err)
		}
	}
	add("video.proportion", func() float64 { return video.Proportion() * 100 })
	add("audio.proportion", func() float64 { return audio.Proportion() * 100 })
	add("video.q fill%", videoQ.FillPct)
	add("audio.q fill%", audioQ.FillPct)

	if err := scope.SetPollingMode(period); err != nil {
		fatal(err)
	}
	if err := scope.StartPolling(); err != nil {
		fatal(err)
	}

	total := 16 * time.Second
	for t := time.Duration(0); t < total; t += period {
		if t == total/2 {
			// Decoding a frame becomes twice as expensive: the video
			// decoder's real-rate share must double, 30% -> 60%.
			video.Rate = 50
			fmt.Printf("t=%v: video decode cost doubled (rate 100 -> 50/s)\n", t)
		}
		s.Step(period)
		loop.Advance(period)
	}

	frame := gtk.NewScopeWidget(scope).RenderFrame()
	if err := frame.WritePNG("scheduler.png"); err != nil {
		fatal(err)
	}
	fmt.Printf("final proportions: video=%.2f (real-rate need 0.60) audio=%.2f (need 0.125), total=%.2f\n",
		video.Proportion(), audio.Proportion(), s.TotalProportion())
	fmt.Printf("queues: video %.0f%%, audio %.0f%%\n", videoQ.FillPct(), audioQ.FillPct())
	fmt.Println("wrote scheduler.png")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scheduler:", err)
	os.Exit(1)
}
