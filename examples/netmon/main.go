// Netmon demonstrates the paper's event-driven signal techniques (§4.2) on
// a live network monitoring scenario — the examples the paper itself uses
// for each aggregation function:
//
//	Max      — maximum packet latency per polling interval
//	Rate     — bandwidth in bytes per second
//	Average  — bytes per packet
//	Events   — packets per interval
//	AnyEvent — did anything arrive?
//
// Packet arrivals come from a simulated UDP flow crossing a congested
// link (so latency varies with queue depth); every delivery pushes one
// event into the scope, and the scope aggregates between polls. A sixth
// signal uses the §4.2 buffering technique: per-packet latencies pushed as
// timestamped BUFFER samples and displayed with a delay.
package main

import (
	"fmt"
	"os"
	"time"

	gscope "repro"
	"repro/internal/gtk"
	"repro/internal/netsim"
)

func main() {
	// The monitored network: a 2 Mbit/s link whose queue fills and
	// drains as a bursty on/off source toggles, varying latency.
	sim := netsim.NewSim()
	sink := netsim.NewUDPSink(sim, 0)
	link := netsim.NewLink(sim, 2e6, 10*time.Millisecond, netsim.NewDropTail(40), sink.OnPacket)
	src := netsim.NewUDPSource(sim, 0, 1.6e6, 1000, link.Send)
	burst := netsim.NewUDPSource(sim, 1, 1.2e6, 1000, link.Send)

	// The scope: one signal per aggregation function.
	clock := gscope.NewVirtualClock(time.Unix(0, 0))
	loop := gscope.NewLoopGranularity(clock, 0)
	scope := gscope.New(loop, "network monitor", 600, 220)

	mustAdd := func(sig gscope.Sig) {
		if _, err := scope.AddSignal(sig); err != nil {
			fatal(err)
		}
	}
	mustAdd(gscope.Sig{Name: "max latency (ms)", Agg: gscope.AggMax, Min: 0, Max: 200})
	mustAdd(gscope.Sig{Name: "bandwidth (KB/s)", Agg: gscope.AggRate, Min: 0, Max: 400})
	mustAdd(gscope.Sig{Name: "bytes/packet", Agg: gscope.AggAverage, Min: 0, Max: 1500})
	mustAdd(gscope.Sig{Name: "packets", Agg: gscope.AggEvents, Min: 0, Max: 40})
	mustAdd(gscope.Sig{Name: "any arrival", Agg: gscope.AggAnyEvent, Min: 0, Max: 1.5})
	mustAdd(gscope.Sig{Name: "latency (buffered)", Kind: gscope.KindBuffer, Min: 0, Max: 200})
	scope.SetDelay(250 * time.Millisecond)

	// Every packet delivery pushes events — the §4.2 instrumentation.
	// AggRate aggregates bytes (→ bandwidth); AggMax aggregates latency.
	sink.OnPacketEvent = func(latency time.Duration, bytes int) {
		ms := float64(latency.Microseconds()) / 1000
		scope.Event("max latency (ms)", ms)
		scope.Event("bandwidth (KB/s)", float64(bytes)/1024)
		scope.Event("bytes/packet", float64(bytes))
		scope.Event("packets", 1)
		scope.Event("any arrival", 1)
		scope.Push(sim.Now(), "latency (buffered)", ms)
	}

	if err := scope.SetPollingMode(50 * time.Millisecond); err != nil {
		fatal(err)
	}
	if err := scope.StartPolling(); err != nil {
		fatal(err)
	}

	// Drive sim and scope in lockstep; toggle the burst source to make
	// the queue (and hence latency and bandwidth) swing.
	src.Start()
	total := 10 * time.Second
	for t := time.Duration(0); t < total; t += 50 * time.Millisecond {
		switch {
		case t == 2*time.Second:
			fmt.Println("t=2s: burst source on")
			burst.Start()
		case t == 6*time.Second:
			fmt.Println("t=6s: burst source off")
			burst.Stop()
		}
		sim.RunUntil(t + 50*time.Millisecond)
		loop.Advance(50 * time.Millisecond)
	}

	frame := gtk.NewScopeWidget(scope).RenderFrame()
	if err := frame.WritePNG("netmon.png"); err != nil {
		fatal(err)
	}
	fmt.Printf("received %d packets, lost %d (%.1f%%), max latency %v\n",
		sink.Received, sink.Lost, sink.LossRate()*100, sink.MaxLatency)
	fmt.Println("wrote netmon.png")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netmon:", err)
	os.Exit(1)
}
