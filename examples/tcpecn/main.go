// Tcpecn reproduces the paper's headline experiment (§2, Figures 4 and 5):
// mxtraf elephants through an emulated congested wide-area router, the flow
// count switched from 8 to 16 half way, with the elephants and CWND
// signals on a gscope. It runs both the DropTail/TCP and the RED/ECN
// variants, writes fig4_tcp.png and fig5_ecn.png, and prints the timeout
// comparison the paper draws its conclusion from.
package main

import (
	"fmt"
	"os"

	"repro/internal/figures"
)

func main() {
	fmt.Println("running the Figure 4 experiment (DropTail, TCP)...")
	tcp, err := figures.Figure4()
	if err != nil {
		fatal(err)
	}
	if err := tcp.Frame.WritePNG("fig4_tcp.png"); err != nil {
		fatal(err)
	}
	fmt.Println(" ", tcp.Summary("TCP"))

	fmt.Println("running the Figure 5 experiment (RED, ECN)...")
	ecn, err := figures.Figure5()
	if err != nil {
		fatal(err)
	}
	if err := ecn.Frame.WritePNG("fig5_ecn.png"); err != nil {
		fatal(err)
	}
	fmt.Println(" ", ecn.Summary("ECN"))

	fmt.Println()
	fmt.Println("paper's observation: both TCP and ECN reduce CWND to one on a")
	fmt.Println("timeout; the graphs show that while ECN does not hit this value,")
	fmt.Println("TCP hits it several times.")
	fmt.Printf("reproduced: TCP cwnd-floor hits=%d, ECN cwnd-floor hits=%d\n",
		tcp.CwndMin1Hits, ecn.CwndMin1Hits)
	fmt.Printf("            TCP timeouts=%d,      ECN timeouts=%d\n",
		tcp.TotalTimeouts, ecn.TotalTimeouts)
	fmt.Println("wrote fig4_tcp.png and fig5_ecn.png")

	if tcp.CwndMin1Hits == 0 || ecn.CwndMin1Hits != 0 {
		fmt.Println("WARNING: shape does not match the paper")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcpecn:", err)
	os.Exit(1)
}
