// Distributed demonstrates the client/server visualization library (§4.4):
// a gscope server displays BUFFER signals streamed over TCP by two clients
// — the same structure the paper uses to correlate client, server and
// network behaviour of mxtraf on a single scope. Everything runs in one
// process over localhost, but the three parties share nothing except the
// socket and a time origin, exactly as separate machines would.
package main

import (
	"fmt"
	"math"
	"os"
	"time"

	gscope "repro"
	"repro/internal/gtk"
	"repro/internal/netscope"
)

func main() {
	loop := gscope.NewLoop(nil) // real clock

	// The server side: a scope with two BUFFER signals displayed with a
	// 200 ms delay (late data is dropped).
	scope := gscope.New(loop, "distributed", 600, 200)
	for _, name := range []string{"client-a", "client-b"} {
		if _, err := scope.AddSignal(gscope.Sig{Name: name, Kind: gscope.KindBuffer}); err != nil {
			fatal(err)
		}
	}
	scope.SetDelay(200 * time.Millisecond)
	if err := scope.SetPollingMode(50 * time.Millisecond); err != nil {
		fatal(err)
	}

	srv := netscope.NewServer(loop)
	srv.Attach(scope)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	fmt.Println("server listening on", addr)

	// Two clients streaming from their own goroutines ("machines"),
	// stamping samples against the shared origin.
	origin := time.Now()
	for i, name := range []string{"client-a", "client-b"} {
		i, name := i, name
		go func() {
			c, err := netscope.Dial(addr.String())
			if err != nil {
				fmt.Fprintln(os.Stderr, name, err)
				return
			}
			defer c.Close()
			tick := time.NewTicker(25 * time.Millisecond)
			defer tick.Stop()
			for range tick.C {
				at := time.Since(origin)
				if at > 3*time.Second {
					return
				}
				v := 50 + 40*math.Sin(2*math.Pi*at.Seconds()/(1.5+float64(i)))
				c.Send(at, name, v) //nolint:errcheck
			}
		}()
	}

	if err := scope.StartPolling(); err != nil {
		fatal(err)
	}
	loop.TimeoutAdd(3500*time.Millisecond, func(int) bool {
		loop.Quit()
		return false
	})
	if err := loop.Run(); err != nil {
		fatal(err)
	}
	srv.Close()

	frame := gtk.NewScopeWidget(scope).RenderFrame()
	if err := frame.WritePNG("distributed.png"); err != nil {
		fatal(err)
	}
	_, _, received, _ := srv.Stats()
	pushed, dropped := scope.Feed().Stats()
	fmt.Printf("received %d tuples (%d buffered, %d dropped late)\n", received, pushed, dropped)
	fmt.Println("wrote distributed.png")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distributed:", err)
	os.Exit(1)
}
