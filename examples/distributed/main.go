// Distributed demonstrates the client/server visualization library (§4.4)
// grown into a fan-out pipeline: two publishers stream BUFFER signals over
// TCP into a relay hub, which displays them locally AND re-publishes the
// merged stream to two independently subscribed viewer scopes — the
// many-viewer topology the paper's one-server/one-display library could
// not express. Everything runs in one process over localhost, but the
// parties share nothing except the sockets and a time origin, exactly as
// separate machines would.
//
//	publisher-a ─┐                      ┌─ subscriber scope 1 → distributed_sub1.png
//	             ├─→ relay hub (scope) ─┤      (v1: the full merged stream)
//	publisher-b ─┘        │             ├─ subscriber scope 2 → distributed_sub2.png
//	                      │             │      (v2: WithSignals("client-a") only)
//	                      │             └─ control plane: param set amplitude ...
//	                      ├→ distributed.png
//	                      └→ flight recorder → replay → distributed_replay.png
//
// Viewer 2 demonstrates the v2 subscriber protocol: it asks the hub for a
// per-signal subscription, so the unwanted signal never crosses its wire
// (FanoutStats counts what was withheld). A fourth, stream-less connection
// uses the same socket as a control plane: halfway through the run it sets
// the publishers' amplitude parameter remotely — clamped to its declared
// bounds and observed live by both publishers — which is visible as the
// sine waves flattening in every rendered PNG.
//
// The hub also flight-records the merged stream (a segmented reclog
// session); after the live run the recording is replayed as fast as
// possible into a fourth, offline scope, demonstrating that a recorded
// session reproduces the live picture after the fact.
package main

import (
	"fmt"
	"math"
	"os"
	"time"

	gscope "repro"
	"repro/internal/gtk"
	"repro/internal/netscope"
)

func newBufferScope(loop *gscope.Loop, name string) *gscope.Scope {
	scope := gscope.New(loop, name, 600, 200)
	for _, sig := range []string{"client-a", "client-b"} {
		if _, err := scope.AddSignal(gscope.Sig{Name: sig, Kind: gscope.KindBuffer}); err != nil {
			fatal(err)
		}
	}
	scope.SetDelay(200 * time.Millisecond)
	if err := scope.SetPollingMode(50 * time.Millisecond); err != nil {
		fatal(err)
	}
	return scope
}

func main() {
	loop := gscope.NewLoop(nil) // real clock

	// The relay hub: ingests publishers, displays locally, fans out.
	hubScope := newBufferScope(loop, "relay-hub")
	srv := netscope.NewServer(loop)
	srv.Attach(hubScope)
	pubAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	subAddr, err := srv.ListenSubscribers("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	recDir, err := os.MkdirTemp("", "distributed-session")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(recDir)
	if _, err := srv.Record(recDir, gscope.RecordOptions{}); err != nil {
		fatal(err)
	}
	// The publishers' shared amplitude, exposed as a remote-settable
	// control parameter (§3.2 over the wire).
	var amplitude gscope.FloatVar
	amplitude.Store(40)
	params := gscope.NewParams()
	if err := params.Add(gscope.FloatParam("amplitude", &amplitude, 0, 40)); err != nil {
		fatal(err)
	}
	srv.SetParams(params)
	fmt.Printf("hub ingesting on %s, serving subscribers on %s, recording to %s\n",
		pubAddr, subAddr, recDir)

	// Two downstream viewer scopes, each fed by its own subscription to
	// the hub's merged stream (snapshot + deltas, on the loop goroutine).
	// Viewer 1 is a classic v1 subscriber; viewer 2 subscribes v2 with a
	// per-signal filter, so client-b never crosses its connection.
	viewers := make([]*gscope.Scope, 2)
	for i := range viewers {
		sc := newBufferScope(loop, fmt.Sprintf("viewer-%d", i+1))
		viewers[i] = sc
		var opts []gscope.SubscribeOption
		if i == 1 {
			opts = append(opts, gscope.WithSignals("client-a"))
		}
		sub, err := gscope.SubscribeNet(loop, subAddr.String(), func(t gscope.Tuple) {
			sc.Feed().Push(t.Timestamp(), t.Name, t.Value)
		}, opts...)
		if err != nil {
			fatal(err)
		}
		defer sub.Close()
	}

	// The control plane: a stream-less v2 connection on the same socket.
	// Halfway through the run it turns the amplitude down remotely; the
	// hub clamps to the declared bounds and notifies every v2 subscriber.
	ctl, err := netscope.SubscribeTo(loop, subAddr.String(), func(gscope.Tuple) {},
		netscope.WithoutStream())
	if err != nil {
		fatal(err)
	}
	defer ctl.Close()
	ctl.OnControl(func(f gscope.ControlFrame) {
		if f.Verb == "param-ok" {
			fmt.Printf("remote param set applied: %s = %s\n", f.Arg(0), f.Arg(1))
		}
	})
	loop.TimeoutAdd(1500*time.Millisecond, func(int) bool {
		// Asks for 100 but the parameter is bounded [0, 40] — the clamp
		// happens hub-side, then 12 flattens the waves mid-sweep.
		ctl.Command("param set amplitude 100") //nolint:errcheck
		ctl.Command("param set amplitude 12")  //nolint:errcheck
		return false
	})

	// Two publishers streaming from their own goroutines ("machines"),
	// stamping samples against the shared origin. DialReconnect lets a
	// publisher start before the hub and ride out hub restarts. Each
	// publisher registers its signal once as a probe handle and batches a
	// few samples per send — the probe API v2 publish shape: the name is
	// validated and encoded per batch run, never per sample.
	origin := time.Now()
	for i, name := range []string{"client-a", "client-b"} {
		i, name := i, name
		go func() {
			c := netscope.DialReconnect(pubAddr.String())
			defer c.Close()
			probe, err := c.Probe(name)
			if err != nil {
				fatal(err)
			}
			tick := time.NewTicker(25 * time.Millisecond)
			defer tick.Stop()
			batch := make([]gscope.Sample, 0, 4)
			for range tick.C {
				at := time.Since(origin)
				if at > 3*time.Second {
					if len(batch) > 0 {
						probe.SendBatch(batch) //nolint:errcheck
					}
					return
				}
				v := 50 + amplitude.Load()*math.Sin(2*math.Pi*at.Seconds()/(1.5+float64(i)))
				batch = append(batch, gscope.Sample{At: at, Value: v})
				if len(batch) == cap(batch) {
					probe.SendBatch(batch) //nolint:errcheck
					batch = batch[:0]
				}
			}
		}()
	}

	for _, sc := range append([]*gscope.Scope{hubScope}, viewers...) {
		if err := sc.StartPolling(); err != nil {
			fatal(err)
		}
	}
	loop.TimeoutAdd(3500*time.Millisecond, func(int) bool {
		loop.Quit()
		return false
	})
	if err := loop.Run(); err != nil {
		fatal(err)
	}
	fanout := srv.FanoutStats()
	srv.Close()

	for i, sc := range append([]*gscope.Scope{hubScope}, viewers...) {
		name := "distributed.png"
		if i > 0 {
			name = fmt.Sprintf("distributed_sub%d.png", i)
		}
		if err := gtk.NewScopeWidget(sc).RenderFrame().WritePNG(name); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", name)
	}
	_, _, received, _ := srv.Stats()
	pushed, dropped := hubScope.Feed().Stats()
	fmt.Printf("hub: received %d tuples (%d buffered, %d dropped late)\n", received, pushed, dropped)
	fmt.Printf("fan-out: %d subscribers, %d tuples published, %d dropped to slow viewers, %d filtered by subscriptions\n",
		fanout.Subscribes, fanout.Published, fanout.Dropped, fanout.Filtered)
	for i, sc := range viewers {
		p, d := sc.Feed().Stats()
		fmt.Printf("viewer %d: %d buffered, %d dropped late\n", i+1, p, d)
	}

	// Post-mortem: replay the flight-recorded session (sealed by
	// srv.Close above) into an offline scope and render the same picture
	// from disk. The replayed tuples drive the scope's playback mode at
	// the recorded cadence, compressed to one poll period per sample
	// window.
	sess, err := gscope.OpenSession(recDir)
	if err != nil {
		fatal(err)
	}
	rep := gscope.NewReplayer(sess)
	rep.SetSpeed(0) // as fast as possible
	var recorded []gscope.Tuple
	if err := rep.Run(func(batch []gscope.Tuple) error {
		recorded = append(recorded, append([]gscope.Tuple(nil), batch...)...)
		return nil
	}); err != nil {
		fatal(err)
	}
	replayLoop := gscope.NewLoop(gscope.NewVirtualClock(time.Unix(0, 0)))
	replayScope := newBufferScope(replayLoop, "replay")
	for _, tu := range recorded {
		replayScope.Feed().PushTuple(tu)
	}
	if err := replayScope.SetPollingMode(50 * time.Millisecond); err != nil {
		fatal(err)
	}
	if err := replayScope.StartPolling(); err != nil {
		fatal(err)
	}
	replayLoop.AdvanceTo(time.Unix(0, 0).Add(4 * time.Second))
	if err := gtk.NewScopeWidget(replayScope).RenderFrame().WritePNG("distributed_replay.png"); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote distributed_replay.png (%d tuples replayed from %s)\n",
		len(recorded), recDir)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distributed:", err)
	os.Exit(1)
}
