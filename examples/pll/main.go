// Pll visualizes a software phase-lock loop, one of the control algorithms
// the paper built demos around ("various control algorithms such as a
// software implementation of a phase-lock loop"). The reference frequency
// steps mid-run; the scope shows the phase error spike and the NCO
// re-acquiring lock. This example also demonstrates the frequency-domain
// display (§1) and the trigger extension (§6): a second scope shows the
// NCO output stabilized by a rising-edge trigger.
package main

import (
	"fmt"
	"math"
	"os"
	"time"

	gscope "repro"
	"repro/internal/gtk"
	"repro/internal/pll"
)

func main() {
	const step = time.Millisecond
	const pollEvery = 10 // scope polls at 10 ms; the loop steps at 1 ms

	p := pll.New(pll.DefaultConfig(), 10.5)

	clock := gscope.NewVirtualClock(time.Unix(0, 0))
	loop := gscope.NewLoopGranularity(clock, 0)

	// Scope 1: control signals in the time domain.
	scope := gscope.New(loop, "phase-lock loop", 600, 200)
	add := func(sc *gscope.Scope, name string, fn func() float64, lo, hi float64) {
		if _, err := sc.AddSignal(gscope.Sig{
			Name: name, Source: gscope.FuncSource(fn), Min: lo, Max: hi,
		}); err != nil {
			fatal(err)
		}
	}
	add(scope, "phase err (rad)", p.PhaseError, -math.Pi, math.Pi)
	add(scope, "nco (Hz)", p.NCOHz, 8, 14)
	add(scope, "ref (Hz)", p.ReferenceHz, 8, 14)
	add(scope, "locked", func() float64 {
		if p.Locked() {
			return 1
		}
		return 0
	}, 0, 1.25)

	// Scope 2: the NCO waveform itself, trigger-stabilized (a §6
	// extension feature).
	wave := gscope.New(loop, "nco output (triggered)", 600, 120)
	phase := 0.0
	add(wave, "nco sin", func() float64 { return 50 + 40*math.Sin(phase) }, 0, 100)
	wave.SetTrigger(&gscope.Trigger{Signal: "nco sin", Level: 50, Rising: true})

	for _, sc := range []*gscope.Scope{scope, wave} {
		if err := sc.SetPollingMode(time.Duration(pollEvery) * step); err != nil {
			fatal(err)
		}
		if err := sc.StartPolling(); err != nil {
			fatal(err)
		}
	}

	total := 8 * time.Second
	for t := time.Duration(0); t < total; t += step {
		if t == total/2 {
			fmt.Println("t=4s: reference steps 10.5 Hz -> 12 Hz")
			p.SetReferenceHz(12)
		}
		p.Step(step)
		phase += 2 * math.Pi * p.NCOHz() * step.Seconds()
		if (t/step)%pollEvery == pollEvery-1 {
			loop.Advance(time.Duration(pollEvery) * step)
		}
	}

	if err := gtk.NewScopeWidget(scope).RenderFrame().WritePNG("pll.png"); err != nil {
		fatal(err)
	}
	if err := gtk.NewScopeWidget(wave).RenderFrame().WritePNG("pll_wave.png"); err != nil {
		fatal(err)
	}
	fmt.Printf("locked=%v nco=%.3f Hz err=%.4f rad\n", p.Locked(), p.NCOHz(), p.PhaseError())
	fmt.Println("wrote pll.png and pll_wave.png")
	if !p.Locked() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pll:", err)
	os.Exit(1)
}
