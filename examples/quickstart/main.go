// Quickstart mirrors the paper's Figure 6 sample program line for line: a
// scope is created, the elephants signal (an integer word of memory) is
// added, polling mode is set to 50 ms, polling starts, an I/O-driven
// callback mutates the signal, and the main loop runs. Instead of an X11
// window the frame is written to quickstart.png at the end and painted in
// the terminal.
package main

import (
	"fmt"
	"math"
	"os"
	"time"

	gscope "repro"
	"repro/internal/draw"
	"repro/internal/gtk"
)

func main() {
	// main() of Figure 6:
	loop := gscope.NewLoop(nil) // real clock, like gtk_main's loop

	// scope = gtk_scope_new(name, width, height);
	scope := gscope.New(loop, "quickstart", 600, 200)

	// GtkScopeSig elephants_sig = { name: "elephants",
	//                               signal: {type: INTEGER, {i: &elephants}},
	//                               min: 0, max: 40 };
	var elephants gscope.IntVar
	if _, err := scope.AddSignal(gscope.Sig{
		Name:   "elephants",
		Source: &elephants,
		Min:    0, Max: 40,
	}); err != nil {
		fatal(err)
	}
	// A second, FUNC-typed signal showing arbitrary data acquisition.
	start := time.Now()
	if _, err := scope.AddSignal(gscope.Sig{
		Name: "load",
		Source: gscope.FuncSource(func() float64 {
			t := time.Since(start).Seconds()
			return 50 + 45*math.Sin(2*math.Pi*t/3)
		}),
	}); err != nil {
		fatal(err)
	}
	// A third, BUFFER-typed signal published through a probe handle — the
	// §3–4 "few lines in the hot loop" instrumentation shape: register the
	// name once, then Record costs a handful of stores (no hashing, no
	// allocation), here from a worker goroutine simulating per-request
	// latency measurements.
	if _, err := scope.AddSignal(gscope.Sig{
		Name: "latency-ms",
		Kind: gscope.KindBuffer,
		Min:  0, Max: 40,
	}); err != nil {
		fatal(err)
	}
	latency, err := scope.Probe("latency-ms")
	if err != nil {
		fatal(err)
	}
	scope.SetDelay(100 * time.Millisecond)
	stopWorker := make(chan struct{})
	go func() {
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		n := 0
		for {
			select {
			case <-stopWorker:
				latency.Flush() // publish staged samples before exiting
				return
			case <-tick.C:
				n++
				latency.Record(18 + 12*math.Sin(float64(n)/8) + 5*math.Sin(float64(n)/3))
			}
		}
	}()

	// gtk_scope_set_polling_mode(scope, 50); /* 50 ms */
	if err := scope.SetPollingMode(50 * time.Millisecond); err != nil {
		fatal(err)
	}
	// gtk_scope_start_polling(scope);
	if err := scope.StartPolling(); err != nil {
		fatal(err)
	}

	// g_io_add_watch(..., read_program, fd): here the "control channel"
	// is a timer that changes the elephants count the way mxtraf's
	// control connection would.
	phase := 0
	loop.TimeoutAdd(500*time.Millisecond, func(int) bool {
		counts := []int64{8, 8, 12, 16, 16, 10, 4}
		elephants.Store(counts[phase%len(counts)])
		phase++
		return true
	})

	// Stop after three seconds of real time, then "screenshot".
	loop.TimeoutAdd(3*time.Second, func(int) bool {
		loop.Quit()
		return false
	})

	// gtk_main();
	if err := loop.Run(); err != nil {
		fatal(err)
	}
	close(stopWorker)

	widget := gtk.NewScopeWidget(scope)
	frame := widget.RenderFrame()
	if err := frame.WritePNG("quickstart.png"); err != nil {
		fatal(err)
	}
	if err := frame.WriteANSI(os.Stdout, draw.ANSIOptions{Scale: 4}); err != nil {
		fatal(err)
	}
	st := scope.Stats()
	fmt.Printf("\nwrote quickstart.png — polls=%d lostTicks=%d elephants=%d\n",
		st.Polls, st.LostTicks, elephants.Load())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "quickstart:", err)
	os.Exit(1)
}
